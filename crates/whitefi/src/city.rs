//! City-scale multi-AP simulation with an influence-sharded parallel
//! event core (DESIGN.md §13).
//!
//! A [`CityScenario`] lays WhiteFi cells — one AP plus its clients —
//! over a shared spectrum map of the city: a grid of sites, each with a
//! locale-dependent incumbent map (urban, suburban, rural). Cells are
//! partitioned into **influence-closed shards**: connected components
//! of the *potential* influence graph
//! ([`whitefi_mac::potential_influences`]), whose edges require both
//! geometric reach and overlap of the cells' channel *footprints* (the
//! union of every channel a cell's map could ever admit). Because every
//! engine coupling — delivery, carrier sense, deferral invalidation,
//! interference, and (since this change) every scanner query a
//! behaviour can issue — is gated by reach and channel overlap, and
//! because no node ever tunes or listens outside its cell's footprint
//! (asserted at every sync round), two cells in different components
//! cannot affect each other through *any* path, no matter how the
//! protocol retunes. Simulating each component group in its own
//! [`Simulator`] therefore reproduces the single-simulator run **byte
//! for byte**: `run_city(city, 1)` and `run_city(city, S)` return equal
//! [`CityOutcome`]s, oracle reports and fault events included. The
//! differential tests and the random-topology proptests enforce this.
//!
//! Determinism rests on three invariants:
//!
//! 1. **Stable RNG streams** — every node's `rng_stream` (and thereby
//!    its fault stream) is its *global* city node id, in the sharded
//!    and unsharded builds alike, so each node draws the exact same
//!    random sequence regardless of which simulator hosts it.
//! 2. **Stable oracle identities** — each cell has its own
//!    [`OracleBank`], registered with
//!    [`OracleBank::add_member_as`] under global node ids, so digests
//!    and violation details are invariant under sim-local renumbering.
//! 3. **Order-independent merge** — [`merge_city`] sorts cells by
//!    global index and fault events by `(time, global node)`, so any
//!    completion order of the shard groups (sequential or parallel)
//!    reduces to the same outcome.
//!
//! The conservative lookahead barrier: a real distributed core would
//! block each shard at `t + L` where `L` is the minimum cross-shard
//! propagation latency. Components are *fully* decoupled here, so the
//! true `L` is unbounded; we clamp the window to
//! [`CityScenario::sync_window`] to keep the barrier (and its read-only
//! footprint-closure check) exercised on every run, and count the
//! rounds in [`GroupOutcome::sync_rounds`]. Chunked `run_until` calls
//! are equivalent to one long call — the event loop is time-ordered —
//! so the barrier cannot perturb the simulation.

use crate::ap::{ApBehavior, ApConfig};
use crate::client::{ClientBehavior, ClientConfig};
use crate::driver::{Sample, Scenario, ScenarioOutcome};
use crate::mcham::NodeReport;
use crate::oracles::{OracleBank, OracleConfig};
use whitefi_mac::{
    shard_components, EventCounters, FaultEvent, FaultPlan, NodeConfig, NodeId, ShardSite,
    SimObserver, Simulator, Transmission,
};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{AirtimeVector, IncumbentSet, SpectrumMap, UhfChannel, WfChannel};

/// Incumbent density class of one cell's surroundings (§5.1 of the
/// paper characterizes urban, suburban and rural white-space
/// availability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locale {
    /// Dense incumbents: a couple of narrow free fragments.
    Urban,
    /// Moderate occupancy: two mid-sized fragments.
    Suburban,
    /// Sparse incumbents: nearly the whole band free.
    Rural,
}

impl Locale {
    /// The locale's static spectrum map. Urban and suburban fragments
    /// are disjoint on purpose, so in-range cells of those locales can
    /// still land in different shards (their footprints never overlap).
    pub fn map(self) -> SpectrumMap {
        let free: &[usize] = match self {
            Locale::Urban => &[12, 13, 14, 26],
            Locale::Suburban => &[2, 3, 4, 5, 6, 17, 18, 19],
            Locale::Rural => {
                return occupied_map(&[0, 15]);
            }
        };
        let mut map = occupied_map(&[]);
        for i in 0..whitefi_spectrum::NUM_UHF_CHANNELS {
            if !free.contains(&i) {
                map.set_occupied(UhfChannel::from_index(i));
            }
        }
        map
    }
}

fn occupied_map(occupied: &[usize]) -> SpectrumMap {
    let mut map = SpectrumMap::all_free();
    for &i in occupied {
        map.set_occupied(UhfChannel::from_index(i));
    }
    map
}

/// One WhiteFi cell: an AP and its clients, co-located at a site.
#[derive(Debug, Clone)]
pub struct CityCell {
    /// Site position in metres.
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range of every node in the cell.
    pub range: f64,
    /// The cell's static incumbent map (locale-dependent).
    pub map: SpectrumMap,
    /// The locale the map was drawn from (reporting only).
    pub locale: Locale,
    /// Number of clients attached to the AP.
    pub n_clients: usize,
    /// Extra incumbents beyond the static map (e.g. mic schedules),
    /// audible at every node of the cell.
    pub extra_incumbents: Option<IncumbentSet>,
}

impl CityCell {
    /// The channel the cell's AP boots on: the assignment algorithm's
    /// clean-spectrum choice over the cell map (same rule as
    /// [`crate::driver::run_whitefi`]).
    pub fn initial_channel(&self) -> WfChannel {
        let report = NodeReport {
            map: self.map,
            airtime: AirtimeVector::idle(),
        };
        crate::mcham::select_channel(&report, &[])
            .map(|(c, _)| c)
            // lint:allow(unwrap, a cell whose map admits no channel cannot host a network; documented precondition)
            .expect("city cell map admits no channel")
    }

    /// The cell's shard site: position, range, and the footprint of
    /// every channel its nodes could ever tune to or scan — all
    /// admissible channels of the static map plus the bootstrap
    /// channel. Detected incumbents only *shrink* the observed map, so
    /// the static footprint is an upper bound for the whole run.
    pub fn shard_site(&self) -> ShardSite {
        ShardSite::from_channels(self.pos, self.range, self.map.available_channels())
            .add_channel(self.initial_channel())
    }

    fn footprint(&self) -> u32 {
        self.shard_site().footprint
    }
}

/// A city of WhiteFi cells sharing one band.
#[derive(Debug, Clone)]
pub struct CityScenario {
    /// RNG seed (every per-node stream derives from it).
    pub seed: u64,
    /// The cells, in global order. Global node ids are assigned
    /// cell-by-cell in this order: cell `c`'s AP is
    /// [`CityScenario::node_base`]`(c)`, its clients follow.
    pub cells: Vec<CityCell>,
    /// Downlink payload bytes (backlogged).
    pub downlink_bytes: usize,
    /// Uplink payload bytes (backlogged); `None` disables uplink.
    pub uplink_bytes: Option<usize>,
    /// Measurement duration (after warmup).
    pub duration: SimDuration,
    /// Warmup before stats are reset.
    pub warmup: SimDuration,
    /// Timeline sampling period.
    pub sample_interval: SimDuration,
    /// Lookahead-barrier window: each shard advances in chunks of this
    /// length, checking footprint closure at every boundary.
    pub sync_window: SimDuration,
    /// AP protocol configuration template.
    pub ap_config: ApConfig,
    /// Deterministic fault plan, installed identically in every shard
    /// simulator (fault streams key on the global node id).
    pub faults: Option<FaultPlan>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CityScenario {
    /// A square grid of `n_aps` cells, `spacing_m` apart, every node
    /// with range `range_m`, each cell's locale drawn deterministically
    /// from the seed (≈30 % urban, 40 % suburban, 30 % rural). With
    /// `range_m < spacing_m` every cell is its own shard; with
    /// `spacing_m ≤ range_m` neighbouring cells whose footprints
    /// overlap merge into larger components.
    pub fn grid(
        seed: u64,
        n_aps: usize,
        clients_per_ap: usize,
        spacing_m: f64,
        range_m: f64,
    ) -> Self {
        // Integer ceil-sqrt: smallest side with side * side >= n_aps.
        let mut side = 1usize;
        while side * side < n_aps {
            side += 1;
        }
        let mut cells = Vec::with_capacity(n_aps);
        for i in 0..n_aps {
            let (col, row) = (i % side.max(1), i / side.max(1));
            let locale = match splitmix64(seed ^ (i as u64)) % 10 {
                0..=2 => Locale::Urban,
                3..=6 => Locale::Suburban,
                _ => Locale::Rural,
            };
            cells.push(CityCell {
                pos: (col as f64 * spacing_m, row as f64 * spacing_m),
                range: range_m,
                map: locale.map(),
                locale,
                n_clients: clients_per_ap,
                extra_incumbents: None,
            });
        }
        Self {
            seed,
            cells,
            downlink_bytes: 1000,
            uplink_bytes: Some(500),
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_millis(100),
            sync_window: SimDuration::from_millis(200),
            ap_config: ApConfig::default(),
            faults: None,
        }
    }

    /// First global node id of cell `c` (the AP; clients follow).
    pub fn node_base(&self, c: usize) -> usize {
        self.cells[..c].iter().map(|cell| 1 + cell.n_clients).sum()
    }

    /// Total node count across all cells.
    pub fn total_nodes(&self) -> usize {
        self.node_base(self.cells.len())
    }
}

/// The shard partition of a city: groups of cell indices, each group a
/// union of influence-closed components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Cell indices per group, each list ascending; groups cover every
    /// cell exactly once.
    pub groups: Vec<Vec<usize>>,
    /// Number of influence-closed components found (≥ `groups.len()`).
    pub components: usize,
}

/// Partitions the city's cells into at most `shards` influence-closed
/// groups. Components are balanced across groups by node weight with a
/// deterministic longest-processing-time greedy (ties break toward the
/// lower component label, then the lower group index), so the plan is a
/// pure function of the scenario.
pub fn shard_plan(city: &CityScenario, shards: usize) -> ShardPlan {
    let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
    let labels = shard_components(&sites);
    let components = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_cells: Vec<Vec<usize>> = vec![Vec::new(); components];
    for (i, &l) in labels.iter().enumerate() {
        comp_cells[l].push(i);
    }
    let weight =
        |cells: &[usize]| -> usize { cells.iter().map(|&i| 1 + city.cells[i].n_clients).sum() };
    let n_groups = shards.max(1).min(components.max(1));
    let mut order: Vec<usize> = (0..components).collect();
    order.sort_by(|&a, &b| {
        weight(&comp_cells[b])
            .cmp(&weight(&comp_cells[a]))
            .then(a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut loads = vec![0usize; n_groups];
    for l in order {
        let mut g = 0;
        for (k, &load) in loads.iter().enumerate() {
            if load < loads[g] {
                g = k;
            }
        }
        groups[g].extend_from_slice(&comp_cells[l]);
        loads[g] += weight(&comp_cells[l]);
    }
    for group in &mut groups {
        group.sort_unstable();
    }
    groups.retain(|g| !g.is_empty());
    ShardPlan { groups, components }
}

/// The result of simulating one shard group — plain data, safe to send
/// back from a worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupOutcome {
    /// `(global cell index, outcome)` per hosted cell.
    pub cells: Vec<(usize, ScenarioOutcome)>,
    /// Fault events with node ids remapped to global city ids.
    pub fault_events: Vec<FaultEvent>,
    /// Lookahead-barrier rounds executed.
    pub sync_rounds: u64,
    /// Event-loop counters of the group's simulator.
    pub events: EventCounters,
}

/// The merged, order-independent city outcome. `PartialEq` is exact on
/// purpose: the sharding differential tests assert `run_city(city, 1)`
/// and `run_city(city, S)` agree *byte for byte* — per-cell goodput,
/// samples, oracle reports (violations, digests) and fault events all
/// included. Scheduling metadata (event counters, sync rounds) lives in
/// [`CityRunStats`], outside the compared value.
#[derive(Debug, Clone, PartialEq)]
pub struct CityOutcome {
    /// Per-cell outcomes in global cell order.
    pub cells: Vec<ScenarioOutcome>,
    /// Sum of the per-cell aggregate goodputs (Mbps), accumulated in
    /// global cell order.
    pub aggregate_mbps: f64,
    /// All fault events, node ids global, sorted by `(time, node)`.
    pub fault_events: Vec<FaultEvent>,
}

impl CityOutcome {
    /// Total protocol-level incumbent violations across all cells.
    pub fn violations(&self) -> u64 {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Total oracle violations across all cells' reports.
    pub fn oracle_violations(&self) -> usize {
        self.cells.iter().map(|c| c.oracle.violations.len()).sum()
    }
}

/// Scheduling metadata of one [`run_city`] call — deliberately *not*
/// part of [`CityOutcome`], because counters legitimately differ
/// between shardings while the outcome may not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CityRunStats {
    /// Shard groups actually run.
    pub groups: usize,
    /// Influence-closed components found.
    pub components: usize,
    /// Total lookahead-barrier rounds across all groups.
    pub sync_rounds: u64,
    /// Summed event-loop counters across all groups.
    pub events: EventCounters,
}

struct BuiltCell {
    global_cell: usize,
    footprint: u32,
    ap_local: NodeId,
    clients_local: Vec<NodeId>,
    bank: OracleBank,
}

/// Forwards every observer hook to each cell's bank (a simulator has a
/// single observer slot; a shard group hosts several cells).
struct FanOut(Vec<Box<dyn SimObserver>>);

impl SimObserver for FanOut {
    fn on_tx_start(&mut self, now: SimTime, tx: &Transmission) {
        for o in &mut self.0 {
            o.on_tx_start(now, tx);
        }
    }

    fn on_tx_end(&mut self, now: SimTime, tx: &Transmission, faulted_drop: bool) {
        for o in &mut self.0 {
            o.on_tx_end(now, tx, faulted_drop);
        }
    }

    fn on_retune(&mut self, now: SimTime, node: NodeId, old: WfChannel, new: WfChannel) {
        for o in &mut self.0 {
            o.on_retune(now, node, old, new);
        }
    }

    fn on_observed_map(&mut self, now: SimTime, node: NodeId, map: &SpectrumMap) {
        for o in &mut self.0 {
            o.on_observed_map(now, node, map);
        }
    }
}

fn channel_in_footprint(ch: WfChannel, footprint: u32) -> bool {
    ch.spanned().all(|u| footprint & (1u32 << u.index()) != 0)
}

fn build_group(city: &CityScenario, cells: &[usize]) -> (Simulator, Vec<BuiltCell>, Vec<NodeId>) {
    let mut sim = Simulator::new(city.seed);
    // The fault plan must precede every add_node (fault streams are
    // drawn at registration, keyed on the node's global stream id).
    if let Some(plan) = &city.faults {
        sim.set_fault_plan(plan.clone());
    }
    let mut built = Vec::with_capacity(cells.len());
    let mut local_to_global: Vec<NodeId> = Vec::new();
    for &c in cells {
        let cell = &city.cells[c];
        let base = city.node_base(c);
        let initial = cell.initial_channel();
        let ssid = u32::try_from(c + 1).unwrap_or(u32::MAX);
        let incumbents = Scenario::incumbents_for(cell.map, cell.extra_incumbents.as_ref());
        let bank = OracleBank::new(OracleConfig {
            adaptive: true,
            ..OracleConfig::default()
        });

        let mut ap_cfg = city.ap_config.clone();
        ap_cfg.adaptive = true;
        ap_cfg.downlink_bytes = Some(city.downlink_bytes);
        ap_cfg.downlink_interval = None;

        let mut ap_node_cfg = NodeConfig::on_channel(initial)
            .ap()
            .in_ssid(ssid)
            .at(cell.pos.0, cell.pos.1)
            .rng_stream(base as u64)
            .with_incumbents(incumbents.clone());
        ap_node_cfg.range = cell.range;
        let ap_detection = ap_node_cfg.detection_delay;
        let ap_local = sim.add_node(ap_node_cfg, Box::new(ApBehavior::new(ap_cfg)));
        bank.add_member_as(
            ap_local,
            base,
            true,
            &incumbents,
            ap_detection + sim.fault_detection_extra(ap_local),
        );
        local_to_global.push(base);

        let mut clients_local = Vec::with_capacity(cell.n_clients);
        for i in 0..cell.n_clients {
            let global = base + 1 + i;
            let mut node_cfg = NodeConfig::on_channel(initial)
                .in_ssid(ssid)
                .at(cell.pos.0, cell.pos.1)
                .rng_stream(global as u64)
                .with_incumbents(incumbents.clone());
            node_cfg.range = cell.range;
            let detection = node_cfg.detection_delay;
            let slot = u8::try_from(i % 16).unwrap_or(0); // i % 16 < 16, always fits
            let mut ccfg = ClientConfig::new(ap_local, slot);
            if let Some(bytes) = city.uplink_bytes {
                ccfg = ccfg.saturating_uplink(bytes);
            }
            let local = sim.add_node(node_cfg, Box::new(ClientBehavior::new(ccfg)));
            bank.add_member_as(
                local,
                global,
                false,
                &incumbents,
                detection + sim.fault_detection_extra(local),
            );
            local_to_global.push(global);
            clients_local.push(local);
        }

        built.push(BuiltCell {
            global_cell: c,
            footprint: cell.footprint(),
            ap_local,
            clients_local,
            bank,
        });
    }
    sim.set_observer(Box::new(FanOut(
        built.iter().map(|b| b.bank.observer()).collect(),
    )));
    (sim, built, local_to_global)
}

/// Advances the group simulator to `to` in lookahead-barrier windows,
/// asserting at every round that no node has escaped its cell's channel
/// footprint — the load-bearing soundness condition of the sharding.
fn advance(
    sim: &mut Simulator,
    built: &[BuiltCell],
    to: SimTime,
    window: SimDuration,
    sync_rounds: &mut u64,
) {
    assert!(window > SimDuration::ZERO, "sync_window must be positive");
    loop {
        let now = sim.now();
        if now >= to {
            break;
        }
        let mut next = now + window;
        if next > to {
            next = to;
        }
        sim.run_until(next);
        for bc in built {
            for &n in std::iter::once(&bc.ap_local).chain(bc.clients_local.iter()) {
                let ch = sim.node_channel(n);
                assert!(
                    channel_in_footprint(ch, bc.footprint),
                    "node {n} (cell {}) on {ch} escaped its cell footprint {:#010x} — \
                     influence sharding would be unsound",
                    bc.global_cell,
                    bc.footprint,
                );
            }
        }
        *sync_rounds += 1;
    }
}

/// Simulates one shard group — the cells with the given global indices
/// (ascending) — start to finish in a private [`Simulator`], and
/// returns plain data. Pure function of `(city, cells)`: callers may
/// run groups sequentially, or fan them out across worker threads and
/// reduce with [`merge_city`].
pub fn run_city_group(city: &CityScenario, cells: &[usize]) -> GroupOutcome {
    let (mut sim, built, local_to_global) = build_group(city, cells);
    let mut sync_rounds = 0u64;
    advance(
        &mut sim,
        &built,
        SimTime::ZERO + city.warmup,
        city.sync_window,
        &mut sync_rounds,
    );
    sim.reset_stats();

    let mut samples: Vec<Vec<Sample>> = vec![Vec::new(); built.len()];
    let mut last_total = vec![0u64; built.len()];
    let end = city.warmup + city.duration;
    let mut t = city.warmup;
    while t < end {
        t += city.sample_interval;
        if t > end {
            t = end;
        }
        advance(
            &mut sim,
            &built,
            SimTime::ZERO + t,
            city.sync_window,
            &mut sync_rounds,
        );
        for (k, bc) in built.iter().enumerate() {
            let total: u64 = bc
                .clients_local
                .iter()
                .map(|&c| sim.stats(c).rx_data_bytes + sim.stats(c).tx_acked_bytes)
                .sum();
            samples[k].push(Sample {
                t: SimTime::ZERO + t,
                ap_channel: sim.node_channel(bc.ap_local),
                bytes_delta: total - last_total[k],
            });
            last_total[k] = total;
        }
    }

    let span = city.duration;
    let mut cell_outcomes = Vec::with_capacity(built.len());
    for (k, bc) in built.iter().enumerate() {
        let per_client_mbps: Vec<f64> = bc
            .clients_local
            .iter()
            .map(|&c| {
                let s = sim.stats(c);
                (s.rx_data_bytes + s.tx_acked_bytes) as f64 * 8.0 / span.as_secs_f64() / 1e6
            })
            .collect();
        let aggregate_mbps = per_client_mbps.iter().sum();
        let mut violations = sim.stats(bc.ap_local).incumbent_violations;
        for &c in &bc.clients_local {
            violations += sim.stats(c).incumbent_violations;
        }
        cell_outcomes.push((
            bc.global_cell,
            ScenarioOutcome {
                per_client_mbps,
                aggregate_mbps,
                samples: std::mem::take(&mut samples[k]),
                violations,
                oracle: bc.bank.finish(&sim),
            },
        ));
    }

    let fault_events = sim
        .fault_events()
        .iter()
        .map(|e| FaultEvent {
            time: e.time,
            node: local_to_global[e.node],
            kind: e.kind,
        })
        .collect();

    GroupOutcome {
        cells: cell_outcomes,
        fault_events,
        sync_rounds,
        events: sim.event_counters(),
    }
}

fn add_counters(a: EventCounters, b: EventCounters) -> EventCounters {
    EventCounters {
        scheduled: a.scheduled + b.scheduled,
        handled: a.handled + b.handled,
        stale_tentative: a.stale_tentative + b.stale_tentative,
        stale_ack_timeout: a.stale_ack_timeout + b.stale_ack_timeout,
        lazy_elided: a.lazy_elided + b.lazy_elided,
    }
}

/// Reduces the shard groups' outcomes — in *any* order — into the
/// canonical [`CityOutcome`]: cells sorted by global index (and checked
/// to cover the city exactly once), fault events stably sorted by
/// `(time, global node)`. Returns the merged scheduling counters
/// alongside.
pub fn merge_city(
    city: &CityScenario,
    groups: Vec<GroupOutcome>,
) -> (CityOutcome, u64, EventCounters) {
    let mut sync_rounds = 0u64;
    let mut events = EventCounters::default();
    let mut cells: Vec<(usize, ScenarioOutcome)> = Vec::with_capacity(city.cells.len());
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    for g in groups {
        sync_rounds += g.sync_rounds;
        events = add_counters(events, g.events);
        cells.extend(g.cells);
        fault_events.extend(g.fault_events);
    }
    cells.sort_by_key(|c| c.0);
    assert_eq!(
        cells.len(),
        city.cells.len(),
        "shard groups must cover every cell exactly once"
    );
    for (k, (idx, _)) in cells.iter().enumerate() {
        assert_eq!(*idx, k, "shard groups must cover every cell exactly once");
    }
    // Remaining (time, node) ties originate within one simulator (node
    // ids are disjoint across groups), so a stable sort reproduces the
    // single-simulator event order regardless of group arrival order.
    fault_events.sort_by_key(|e| (e.time.as_nanos(), e.node));
    let aggregate_mbps = cells.iter().map(|(_, o)| o.aggregate_mbps).sum();
    (
        CityOutcome {
            cells: cells.into_iter().map(|(_, o)| o).collect(),
            aggregate_mbps,
            fault_events,
        },
        sync_rounds,
        events,
    )
}

/// Runs the whole city at the given shard count, sequentially, and
/// merges. `shards == 1` *is* the unsharded reference: one simulator
/// hosting every cell. Parallel execution lives in the bench harness
/// (its worker pool calls [`run_city_group`] per group and reduces with
/// [`merge_city`]); outcomes are identical by construction either way.
pub fn run_city(city: &CityScenario, shards: usize) -> (CityOutcome, CityRunStats) {
    let plan = shard_plan(city, shards);
    let n_groups = plan.groups.len();
    let groups: Vec<GroupOutcome> = plan
        .groups
        .iter()
        .map(|g| run_city_group(city, g))
        .collect();
    let (outcome, sync_rounds, events) = merge_city(city, groups);
    (
        outcome,
        CityRunStats {
            groups: n_groups,
            components: plan.components,
            sync_rounds,
            events,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_mac::potential_influences;

    fn quick_city(seed: u64, n_aps: usize, spacing: f64, range: f64) -> CityScenario {
        let mut city = CityScenario::grid(seed, n_aps, 1, spacing, range);
        city.warmup = SimDuration::from_millis(400);
        city.duration = SimDuration::from_millis(800);
        city.sample_interval = SimDuration::from_millis(200);
        city
    }

    #[test]
    fn shard_plan_covers_every_cell_once() {
        let city = quick_city(7, 9, 100.0, 120.0);
        for shards in [1, 2, 4, 9, 100] {
            let plan = shard_plan(&city, shards);
            let mut seen: Vec<usize> = plan.groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>(), "shards {shards}");
            assert!(plan.groups.len() <= shards.max(1));
        }
    }

    #[test]
    fn cross_group_cells_never_potentially_influence() {
        let city = quick_city(3, 12, 100.0, 150.0);
        let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
        let plan = shard_plan(&city, 4);
        for (ga, a_cells) in plan.groups.iter().enumerate() {
            for (gb, b_cells) in plan.groups.iter().enumerate() {
                if ga == gb {
                    continue;
                }
                for &a in a_cells {
                    for &b in b_cells {
                        assert!(
                            !potential_influences(&sites[a], &sites[b]),
                            "cells {a} and {b} influence across groups {ga}/{gb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_equals_unsharded_small_city() {
        // Spacing below range: some neighbouring cells couple, so the
        // plan has real multi-cell components *and* singleton ones.
        let city = quick_city(11, 6, 100.0, 110.0);
        let (base, base_stats) = run_city(&city, 1);
        assert_eq!(base_stats.groups, 1);
        assert!(base.cells.iter().all(|c| c.oracle.checked_tx > 0));
        for shards in [2, 4] {
            let (out, stats) = run_city(&city, shards);
            assert_eq!(base, out, "shards {shards} diverged from unsharded");
            assert!(stats.sync_rounds > 0);
        }
    }

    #[test]
    fn sharded_equals_unsharded_with_faults() {
        let mut city = quick_city(13, 4, 100.0, 90.0);
        city.faults = Some(FaultPlan {
            seed: 5,
            drop_prob: 0.05,
            dup_prob: 0.05,
            delay_prob: 0.05,
            max_delay: SimDuration::from_micros(800),
            max_detection_extra: SimDuration::from_millis(20),
            history_skew: None,
        });
        let (base, _) = run_city(&city, 1);
        let (out, stats) = run_city(&city, 3);
        assert!(stats.groups > 1, "faulted city did not actually shard");
        assert_eq!(base, out);
        assert!(
            !base.fault_events.is_empty(),
            "fault plan injected nothing — test exercises no fault merging"
        );
    }

    #[test]
    fn merge_is_group_order_independent() {
        let city = quick_city(17, 4, 100.0, 90.0);
        let plan = shard_plan(&city, 4);
        assert!(plan.groups.len() > 1);
        let groups: Vec<GroupOutcome> = plan
            .groups
            .iter()
            .map(|g| run_city_group(&city, g))
            .collect();
        let (fwd, fwd_rounds, fwd_events) = merge_city(&city, groups.clone());
        let mut rev = groups;
        rev.reverse();
        let (bwd, bwd_rounds, bwd_events) = merge_city(&city, rev);
        assert_eq!(fwd, bwd);
        assert_eq!(fwd_rounds, bwd_rounds);
        assert_eq!(fwd_events, bwd_events);
    }

    #[test]
    fn grid_is_deterministic_and_mixed() {
        let a = CityScenario::grid(42, 64, 2, 100.0, 80.0);
        let b = CityScenario::grid(42, 64, 2, 100.0, 80.0);
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.locale, cb.locale);
            assert_eq!(ca.pos, cb.pos);
        }
        let mut kinds: Vec<Locale> = a.cells.iter().map(|c| c.locale).collect();
        kinds.dedup();
        assert!(kinds.len() > 1, "locale mix collapsed to one class");
    }
}
