//! City-scale multi-AP simulation with an influence-sharded parallel
//! event core (DESIGN.md §13).
//!
//! A [`CityScenario`] lays WhiteFi cells — one AP plus its clients —
//! over a shared spectrum map of the city: a grid of sites, each with a
//! locale-dependent incumbent map (urban, suburban, rural). Cells are
//! partitioned into **influence-closed shards**: connected components
//! of the *potential* influence graph
//! ([`whitefi_mac::potential_influences`]), whose edges require both
//! geometric reach and overlap of the cells' channel *footprints* (the
//! union of every channel a cell's map could ever admit). Because every
//! engine coupling — delivery, carrier sense, deferral invalidation,
//! interference, and (since this change) every scanner query a
//! behaviour can issue — is gated by reach and channel overlap, and
//! because no node ever tunes or listens outside its cell's footprint
//! (asserted at every sync round), two cells in different components
//! cannot affect each other through *any* path, no matter how the
//! protocol retunes. Simulating each component group in its own
//! [`Simulator`] therefore reproduces the single-simulator run **byte
//! for byte**: `run_city(city, 1)` and `run_city(city, S)` return equal
//! [`CityOutcome`]s, oracle reports and fault events included. The
//! differential tests and the random-topology proptests enforce this.
//!
//! Determinism rests on three invariants:
//!
//! 1. **Stable RNG streams** — every node's `rng_stream` (and thereby
//!    its fault stream) is its *global* city node id, in the sharded
//!    and unsharded builds alike, so each node draws the exact same
//!    random sequence regardless of which simulator hosts it.
//! 2. **Stable oracle identities** — each cell has its own
//!    [`OracleBank`], registered with
//!    [`OracleBank::add_member_as`] under global node ids, so digests
//!    and violation details are invariant under sim-local renumbering.
//! 3. **Order-independent merge** — [`merge_city`] sorts cells by
//!    global index and fault events by `(time, global node)`, so any
//!    completion order of the shard groups (sequential or parallel)
//!    reduces to the same outcome.
//!
//! The conservative lookahead barrier: a real distributed core would
//! block each shard at `t + L` where `L` is the minimum cross-shard
//! propagation latency. Components are *fully* decoupled here, so the
//! true `L` is unbounded; we clamp the window to
//! [`CityScenario::sync_window`] to keep the barrier (and its read-only
//! footprint-closure check) exercised on every run, and count the
//! rounds in [`GroupOutcome::sync_rounds`]. Chunked `run_until` calls
//! are equivalent to one long call — the event loop is time-ordered —
//! so the barrier cannot perturb the simulation.
//!
//! **Cutting components** (DESIGN.md §14): a dense urban city chains
//! into *one* influence component, which the component plan cannot
//! split — zero parallelism on the workload that needs it most.
//! [`shard_plan_cut`] may split a component across groups; the groups
//! then run the certified-silent cut protocol in lockstep barrier
//! rounds over the sanctioned [`BoundaryBus`]: each round every group
//! publishes the union span masks of its border cells' transmissions
//! and certifies that no remote border activity could have reached any
//! local cell (footprint ∩ mask, gated by the transmitter's range — the
//! exact engine coupling predicate). A fully silent run is provably
//! byte-identical to the unsharded one; the first contact discards the
//! attempt wholesale and re-runs under the component plan, so
//! `run_city_with(city, s, Cut) == run_city(city, 1)` unconditionally.
//! The engine-level lookahead bound `L = cut_lookahead()` (every
//! transmission start is decided ≥ one minimum SIFS before it fires,
//! asserted live via `set_min_tx_lookahead`) grounds the soundness
//! argument: the first cross-cut influence in the joint execution is a
//! border transmission emitted from a still-exact timeline, so it is
//! recorded, exchanged, and flagged.

use crate::ap::{ApBehavior, ApConfig};
use crate::client::{ClientBehavior, ClientConfig};
use crate::driver::{Sample, Scenario, ScenarioOutcome};
use crate::mcham::NodeReport;
use crate::oracles::{OracleBank, OracleConfig};
use std::cell::RefCell;
use std::rc::Rc;
use whitefi_mac::{
    cut_lookahead, potential_influences_directed, shard_components, BorderActivity, BoundaryBus,
    CutContact, EventCounters, FaultEvent, FaultPlan, NodeConfig, NodeId, ShardSite, SimObserver,
    Simulator, Transmission,
};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{AirtimeVector, IncumbentSet, SpectrumMap, UhfChannel, WfChannel};

/// Incumbent density class of one cell's surroundings (§5.1 of the
/// paper characterizes urban, suburban and rural white-space
/// availability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locale {
    /// Dense incumbents: a couple of narrow free fragments.
    Urban,
    /// Moderate occupancy: two mid-sized fragments.
    Suburban,
    /// Sparse incumbents: nearly the whole band free.
    Rural,
}

impl Locale {
    /// The locale's static spectrum map. Urban and suburban fragments
    /// are disjoint on purpose, so in-range cells of those locales can
    /// still land in different shards (their footprints never overlap).
    pub fn map(self) -> SpectrumMap {
        let free: &[usize] = match self {
            Locale::Urban => &[12, 13, 14, 26],
            Locale::Suburban => &[2, 3, 4, 5, 6, 17, 18, 19],
            Locale::Rural => {
                return occupied_map(&[0, 15]);
            }
        };
        free_map(free)
    }
}

fn occupied_map(occupied: &[usize]) -> SpectrumMap {
    let mut map = SpectrumMap::all_free();
    for &i in occupied {
        map.set_occupied(UhfChannel::from_index(i));
    }
    map
}

fn free_map(free: &[usize]) -> SpectrumMap {
    let mut map = occupied_map(&[]);
    for i in 0..whitefi_spectrum::NUM_UHF_CHANNELS {
        if !free.contains(&i) {
            map.set_occupied(UhfChannel::from_index(i));
        }
    }
    map
}

/// One WhiteFi cell: an AP and its clients, co-located at a site.
#[derive(Debug, Clone, PartialEq)]
pub struct CityCell {
    /// Site position in metres.
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range of every node in the cell.
    pub range: f64,
    /// The cell's static incumbent map (locale-dependent).
    pub map: SpectrumMap,
    /// The locale the map was drawn from (reporting only).
    pub locale: Locale,
    /// Number of clients attached to the AP.
    pub n_clients: usize,
    /// Extra incumbents beyond the static map (e.g. mic schedules),
    /// audible at every node of the cell.
    pub extra_incumbents: Option<IncumbentSet>,
}

impl CityCell {
    /// The channel the cell's AP boots on: the assignment algorithm's
    /// clean-spectrum choice over the cell map (same rule as
    /// [`crate::driver::run_whitefi`]).
    pub fn initial_channel(&self) -> WfChannel {
        let report = NodeReport {
            map: self.map,
            airtime: AirtimeVector::idle(),
        };
        crate::mcham::select_channel(&report, &[])
            .map(|(c, _)| c)
            // lint:allow(unwrap, a cell whose map admits no channel cannot host a network; documented precondition)
            .expect("city cell map admits no channel")
    }

    /// The cell's shard site: position, range, and the footprint of
    /// every channel its nodes could ever tune to or scan — all
    /// admissible channels of the static map plus the bootstrap
    /// channel. Detected incumbents only *shrink* the observed map, so
    /// the static footprint is an upper bound for the whole run.
    pub fn shard_site(&self) -> ShardSite {
        ShardSite::from_channels(self.pos, self.range, self.map.available_channels())
            .add_channel(self.initial_channel())
    }

    fn footprint(&self) -> u32 {
        self.shard_site().footprint
    }
}

/// A city of WhiteFi cells sharing one band.
#[derive(Debug, Clone, PartialEq)]
pub struct CityScenario {
    /// RNG seed (every per-node stream derives from it).
    pub seed: u64,
    /// The cells, in global order. Global node ids are assigned
    /// cell-by-cell in this order: cell `c`'s AP is
    /// [`CityScenario::node_base`]`(c)`, its clients follow.
    pub cells: Vec<CityCell>,
    /// Downlink payload bytes (backlogged).
    pub downlink_bytes: usize,
    /// Uplink payload bytes (backlogged); `None` disables uplink.
    pub uplink_bytes: Option<usize>,
    /// Measurement duration (after warmup).
    pub duration: SimDuration,
    /// Warmup before stats are reset.
    pub warmup: SimDuration,
    /// Timeline sampling period.
    pub sample_interval: SimDuration,
    /// Lookahead-barrier window: each shard advances in chunks of this
    /// length, checking footprint closure at every boundary.
    pub sync_window: SimDuration,
    /// AP protocol configuration template.
    pub ap_config: ApConfig,
    /// Deterministic fault plan, installed identically in every shard
    /// simulator (fault streams key on the global node id).
    pub faults: Option<FaultPlan>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CityScenario {
    /// A square grid of `n_aps` cells, `spacing_m` apart, every node
    /// with range `range_m`, each cell's locale drawn deterministically
    /// from the seed (≈30 % urban, 40 % suburban, 30 % rural). With
    /// `range_m < spacing_m` every cell is its own shard; with
    /// `spacing_m ≤ range_m` neighbouring cells whose footprints
    /// overlap merge into larger components.
    pub fn grid(
        seed: u64,
        n_aps: usize,
        clients_per_ap: usize,
        spacing_m: f64,
        range_m: f64,
    ) -> Self {
        // Integer ceil-sqrt: smallest side with side * side >= n_aps.
        let mut side = 1usize;
        while side * side < n_aps {
            side += 1;
        }
        let mut cells = Vec::with_capacity(n_aps);
        for i in 0..n_aps {
            let (col, row) = (i % side.max(1), i / side.max(1));
            let locale = match splitmix64(seed ^ (i as u64)) % 10 {
                0..=2 => Locale::Urban,
                3..=6 => Locale::Suburban,
                _ => Locale::Rural,
            };
            cells.push(CityCell {
                pos: (col as f64 * spacing_m, row as f64 * spacing_m),
                range: range_m,
                map: locale.map(),
                locale,
                n_clients: clients_per_ap,
                extra_incumbents: None,
            });
        }
        Self {
            seed,
            cells,
            downlink_bytes: 1000,
            uplink_bytes: Some(500),
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_millis(100),
            sync_window: SimDuration::from_millis(200),
            ap_config: ApConfig::default(),
            faults: None,
        }
    }

    /// The dense-urban pathology: a checkerboard grid whose influence
    /// graph is **one** component, so the component planner
    /// ([`shard_plan`]) cannot split it and the whole city runs on a
    /// single shard — the workload [`shard_plan_cut`] exists for.
    ///
    /// Cells sit 100 m apart with 105 m range (4-neighbours in reach;
    /// diagonals at ~141 m are not, and the grid is bipartite, so
    /// same-parity cells never hear each other). Even-parity cells get
    /// free fragments `{6,7,8, 10,11,12, 26}`, odd-parity cells
    /// `{2,3,4, 17,18,19, 26}`: the shared W5-only **bridge channel
    /// 26** chains every in-reach (hence opposite-parity) pair's
    /// footprints into a single component, while the widest-clean
    /// assignment rule parks every AP (and its lowest-W5 backup) inside
    /// its parity's private interior fragments. No node ever transmits
    /// on the bridge, so a cut run certifies silent on every round —
    /// the honest ≥2× regime of DESIGN.md §14, asserted by the
    /// checkerboard differential test and the dense rows of the `city`
    /// experiment.
    pub fn checkerboard(seed: u64, n_aps: usize, clients_per_ap: usize) -> Self {
        let mut city = Self::grid(seed, n_aps, clients_per_ap, 100.0, 105.0);
        let mut side = 1usize;
        while side * side < n_aps {
            side += 1;
        }
        for (i, cell) in city.cells.iter_mut().enumerate() {
            let (col, row) = (i % side.max(1), i / side.max(1));
            let free: &[usize] = if (col + row) % 2 == 0 {
                &[6, 7, 8, 10, 11, 12, 26]
            } else {
                &[2, 3, 4, 17, 18, 19, 26]
            };
            cell.map = free_map(free);
            cell.locale = Locale::Urban;
        }
        city
    }

    /// First global node id of cell `c` (the AP; clients follow).
    pub fn node_base(&self, c: usize) -> usize {
        self.cells[..c].iter().map(|cell| 1 + cell.n_clients).sum()
    }

    /// Total node count across all cells.
    pub fn total_nodes(&self) -> usize {
        self.node_base(self.cells.len())
    }
}

/// The shard partition of a city: groups of cell indices, each group a
/// union of influence-closed components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Cell indices per group, each list ascending; groups cover every
    /// cell exactly once.
    pub groups: Vec<Vec<usize>>,
    /// Number of influence-closed components found (≥ `groups.len()`).
    pub components: usize,
}

/// Partitions the city's cells into at most `shards` influence-closed
/// groups. Components are balanced across groups by node weight with a
/// deterministic longest-processing-time greedy (ties break toward the
/// lower component label, then the lower group index), so the plan is a
/// pure function of the scenario.
pub fn shard_plan(city: &CityScenario, shards: usize) -> ShardPlan {
    let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
    let labels = shard_components(&sites);
    let components = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_cells: Vec<Vec<usize>> = vec![Vec::new(); components];
    for (i, &l) in labels.iter().enumerate() {
        comp_cells[l].push(i);
    }
    let weight =
        |cells: &[usize]| -> usize { cells.iter().map(|&i| 1 + city.cells[i].n_clients).sum() };
    let n_groups = shards.max(1).min(components.max(1));
    let mut order: Vec<usize> = (0..components).collect();
    order.sort_by(|&a, &b| {
        weight(&comp_cells[b])
            .cmp(&weight(&comp_cells[a]))
            .then(a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut loads = vec![0usize; n_groups];
    for l in order {
        let mut g = 0;
        for (k, &load) in loads.iter().enumerate() {
            if load < loads[g] {
                g = k;
            }
        }
        groups[g].extend_from_slice(&comp_cells[l]);
        loads[g] += weight(&comp_cells[l]);
    }
    for group in &mut groups {
        group.sort_unstable();
    }
    groups.retain(|g| !g.is_empty());
    ShardPlan { groups, components }
}

/// How [`run_city_with`] partitions the city into shard groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityPartition {
    /// Influence-closed components only ([`shard_plan`]): groups are
    /// provably independent and the run is exact by construction. A
    /// dense city that collapses into one component gets one group —
    /// and zero parallelism.
    Components,
    /// Balanced graph cut ([`shard_plan_cut`]): components may be split
    /// across groups, coupled by the certified-silent boundary protocol
    /// (DESIGN.md §14). Byte-identical to [`CityPartition::Components`]
    /// always — on the first cross-cut contact the attempt is discarded
    /// and the city re-runs under the component plan.
    Cut,
}

fn cell_weight(city: &CityScenario, c: usize) -> usize {
    1 + city.cells[c].n_clients
}

fn groups_weight(city: &CityScenario, cells: &[usize]) -> usize {
    cells.iter().map(|&c| cell_weight(city, c)).sum()
}

/// Weight of the heaviest influence component over the total node
/// weight — 1.0 means the whole city is one component and the component
/// planner ([`shard_plan`]) has no parallelism at all to exploit.
pub fn largest_component_fraction(city: &CityScenario) -> f64 {
    let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
    let labels = shard_components(&sites);
    let components = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut weights = vec![0usize; components];
    for (i, &l) in labels.iter().enumerate() {
        weights[l] += cell_weight(city, i);
    }
    let total = city.total_nodes();
    if total == 0 {
        return 0.0;
    }
    // Node counts are far below 2^53, so the casts are exact.
    #[allow(clippy::cast_precision_loss)]
    {
        weights.iter().copied().max().unwrap_or(0) as f64 / total as f64
    }
}

/// Per-shard load imbalance of a grouping against the *requested*
/// parallelism: the heaviest group's node weight over the ideal share
/// (total weight / `shards`). 1.0 is a perfect balance across all
/// requested shards; a one-component city under the component plan
/// reports ≈ `shards` — all the weight on one of the requested shards,
/// which is exactly the urban-collapse pathology the cut planner
/// removes.
pub fn load_imbalance(city: &CityScenario, groups: &[Vec<usize>], shards: usize) -> f64 {
    let total = city.total_nodes();
    if total == 0 || groups.is_empty() {
        return 1.0;
    }
    let max = groups
        .iter()
        .map(|g| groups_weight(city, g))
        .max()
        .unwrap_or(0);
    // Node counts are far below 2^53, so the casts are exact.
    #[allow(clippy::cast_precision_loss)]
    {
        max as f64 * shards.max(1) as f64 / total as f64
    }
}

/// A balanced graph-cut partition: groups plus the directed border
/// structure the certified-silent protocol watches (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq)]
pub struct CutPlan {
    /// Cell indices per group, each list ascending, groups ordered by
    /// their first cell; groups cover every cell exactly once.
    pub groups: Vec<Vec<usize>>,
    /// Influence-closed components found (may be *fewer* than groups —
    /// that is the point of the cut).
    pub components: usize,
    /// Directed cross-group influence edges `(src cell, dst cell)`:
    /// `src`'s footprint overlaps `dst`'s and `dst` lies within `src`'s
    /// range. Empty iff the plan degenerates to the component plan (cut
    /// groups are then provably independent).
    pub cut_pairs: Vec<(usize, usize)>,
    /// Per group: the ascending local cells whose transmissions could
    /// cross the cut (sources of some [`CutPlan::cut_pairs`] edge) —
    /// the cells whose span masks the group publishes every round.
    pub border: Vec<Vec<usize>>,
    /// Per group: `(remote source cell, sensitivity mask)` ascending by
    /// cell — the union of the footprints of every *local* cell within
    /// the remote cell's reach. A round certifies silent for the group
    /// iff no remote activity mask intersects its sensitivity mask.
    pub sensitivity: Vec<Vec<(usize, u32)>>,
    /// [`largest_component_fraction`] of the city (diagnostic).
    pub largest_component_fraction: f64,
    /// [`load_imbalance`] of the cut groups (diagnostic).
    pub load_imbalance: f64,
}

/// Splits `cells` (≥ 2) into two non-empty halves, balanced by node
/// weight along the axis with the wider positional extent. Pure
/// function of its inputs: cells are ordered by `(axis coordinate,
/// other coordinate, index)` with total float ordering, then the prefix
/// whose doubled weight stays below the total goes left.
fn split_cells(city: &CityScenario, cells: &[usize]) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(cells.len() >= 2);
    let xs = |c: usize| city.cells[c].pos.0;
    let ys = |c: usize| city.cells[c].pos.1;
    let extent = |coord: &dyn Fn(usize) -> f64| -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &c in cells {
            lo = lo.min(coord(c));
            hi = hi.max(coord(c));
        }
        hi - lo
    };
    let along_x = extent(&xs) >= extent(&ys);
    let mut order: Vec<usize> = cells.to_vec();
    order.sort_by(|&a, &b| {
        let ka = if along_x {
            (xs(a), ys(a))
        } else {
            (ys(a), xs(a))
        };
        let kb = if along_x {
            (xs(b), ys(b))
        } else {
            (ys(b), xs(b))
        };
        ka.0.total_cmp(&kb.0)
            .then(ka.1.total_cmp(&kb.1))
            .then(a.cmp(&b))
    });
    let total = groups_weight(city, cells);
    let mut acc = 0usize;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &c in &order {
        if acc * 2 < total {
            acc += cell_weight(city, c);
            left.push(c);
        } else {
            right.push(c);
        }
    }
    if right.is_empty() {
        // One cell outweighs the rest combined; keep both halves
        // non-empty (left has ≥ 2 entries here).
        if let Some(c) = left.pop() {
            right.push(c);
        }
    }
    (left, right)
}

/// The balanced graph-cut partitioner: starts from the component plan
/// ([`shard_plan`]) and, while fewer groups than `shards` exist, splits
/// the heaviest splittable group (≥ 2 cells; ties toward the lower
/// group index) geometrically with [`split_cells`]. When components
/// already reach `shards`, the result *is* the component plan and
/// `cut_pairs` is empty — the cut machinery engages only when the
/// component structure is too coarse. Deterministic: a pure function of
/// the scenario and `shards`.
pub fn shard_plan_cut(city: &CityScenario, shards: usize) -> CutPlan {
    let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
    let base = shard_plan(city, shards);
    let components = base.components;
    let mut groups = base.groups;
    let target = shards.max(1).min(city.cells.len().max(1));
    while groups.len() < target {
        let mut pick: Option<usize> = None;
        for (g, cells) in groups.iter().enumerate() {
            if cells.len() < 2 {
                continue;
            }
            let heavier = match pick {
                None => true,
                Some(p) => groups_weight(city, &groups[p]) < groups_weight(city, cells),
            };
            if heavier {
                pick = Some(g);
            }
        }
        let Some(g) = pick else { break };
        let (left, right) = split_cells(city, &groups[g]);
        groups[g] = left;
        groups.push(right);
    }
    for group in &mut groups {
        group.sort_unstable();
    }
    groups.sort_by_key(|g| g.first().copied().unwrap_or(usize::MAX));

    let mut group_of = vec![0usize; city.cells.len()];
    for (g, cells) in groups.iter().enumerate() {
        for &c in cells {
            group_of[c] = g;
        }
    }
    let mut cut_pairs: Vec<(usize, usize)> = Vec::new();
    let mut border: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    let mut sensitivity: Vec<Vec<(usize, u32)>> = vec![Vec::new(); groups.len()];
    for a in 0..sites.len() {
        for b in 0..sites.len() {
            if a == b || group_of[a] == group_of[b] {
                continue;
            }
            if !potential_influences_directed(&sites[a], &sites[b]) {
                continue;
            }
            cut_pairs.push((a, b));
            let g = group_of[a];
            if border[g].last() != Some(&a) {
                border[g].push(a);
            }
            let sens = &mut sensitivity[group_of[b]];
            match sens.binary_search_by_key(&a, |p| p.0) {
                Ok(i) => sens[i].1 |= sites[b].footprint,
                Err(i) => sens.insert(i, (a, sites[b].footprint)),
            }
        }
    }

    let lcf = largest_component_fraction(city);
    let imbalance = load_imbalance(city, &groups, shards);
    CutPlan {
        groups,
        components,
        cut_pairs,
        border,
        sensitivity,
        largest_component_fraction: lcf,
        load_imbalance: imbalance,
    }
}

/// The result of simulating one shard group — plain data, safe to send
/// back from a worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupOutcome {
    /// `(global cell index, outcome)` per hosted cell.
    pub cells: Vec<(usize, ScenarioOutcome)>,
    /// Fault events with node ids remapped to global city ids.
    pub fault_events: Vec<FaultEvent>,
    /// Lookahead-barrier rounds executed.
    pub sync_rounds: u64,
    /// Event-loop counters of the group's simulator.
    pub events: EventCounters,
}

/// The merged, order-independent city outcome. `PartialEq` is exact on
/// purpose: the sharding differential tests assert `run_city(city, 1)`
/// and `run_city(city, S)` agree *byte for byte* — per-cell goodput,
/// samples, oracle reports (violations, digests) and fault events all
/// included. Scheduling metadata (event counters, sync rounds) lives in
/// [`CityRunStats`], outside the compared value.
#[derive(Debug, Clone, PartialEq)]
pub struct CityOutcome {
    /// Per-cell outcomes in global cell order.
    pub cells: Vec<ScenarioOutcome>,
    /// Sum of the per-cell aggregate goodputs (Mbps), accumulated in
    /// global cell order.
    pub aggregate_mbps: f64,
    /// All fault events, node ids global, sorted by `(time, node)`.
    pub fault_events: Vec<FaultEvent>,
}

impl CityOutcome {
    /// Total protocol-level incumbent violations across all cells.
    pub fn violations(&self) -> u64 {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Total oracle violations across all cells' reports.
    pub fn oracle_violations(&self) -> usize {
        self.cells.iter().map(|c| c.oracle.violations.len()).sum()
    }
}

/// Scheduling metadata of one [`run_city`] call — deliberately *not*
/// part of [`CityOutcome`], because counters legitimately differ
/// between shardings while the outcome may not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityRunStats {
    /// Shard groups actually run.
    pub groups: usize,
    /// Influence-closed components found.
    pub components: usize,
    /// Total lookahead-barrier rounds across all groups.
    pub sync_rounds: u64,
    /// Summed event-loop counters across all groups.
    pub events: EventCounters,
    /// Weight share of the heaviest influence component
    /// ([`largest_component_fraction`]); 1.0 = the urban-collapse
    /// pathology where the component planner has nothing to split.
    pub largest_component_fraction: f64,
    /// Heaviest group weight over the ideal share
    /// ([`load_imbalance`]) of the groups actually run.
    pub load_imbalance: f64,
    /// Directed cross-group influence edges the cut protocol watched
    /// (0 under [`CityPartition::Components`] or a degenerate cut).
    pub cut_pairs: usize,
    /// True iff a cut attempt hit a cross-cut contact and the city was
    /// re-run under the component plan (the reported outcome is the
    /// fallback's — identical by the determinism contract).
    pub fallback: bool,
}

struct BuiltCell {
    global_cell: usize,
    footprint: u32,
    ap_local: NodeId,
    clients_local: Vec<NodeId>,
    bank: OracleBank,
}

/// Forwards every observer hook to each cell's bank (a simulator has a
/// single observer slot; a shard group hosts several cells).
struct FanOut(Vec<Box<dyn SimObserver>>);

impl SimObserver for FanOut {
    fn on_tx_start(&mut self, now: SimTime, tx: &Transmission) {
        for o in &mut self.0 {
            o.on_tx_start(now, tx);
        }
    }

    fn on_tx_end(&mut self, now: SimTime, tx: &Transmission, faulted_drop: bool) {
        for o in &mut self.0 {
            o.on_tx_end(now, tx, faulted_drop);
        }
    }

    fn on_retune(&mut self, now: SimTime, node: NodeId, old: WfChannel, new: WfChannel) {
        for o in &mut self.0 {
            o.on_retune(now, node, old, new);
        }
    }

    fn on_observed_map(&mut self, now: SimTime, node: NodeId, map: &SpectrumMap) {
        for o in &mut self.0 {
            o.on_observed_map(now, node, map);
        }
    }
}

fn channel_in_footprint(ch: WfChannel, footprint: u32) -> bool {
    ch.spanned().all(|u| footprint & (1u32 << u.index()) != 0)
}

fn span_mask(ch: WfChannel) -> u32 {
    ch.spanned().fold(0u32, |m, u| m | (1u32 << u.index()))
}

/// Passive border recorder for the cut protocol: accumulates, per
/// hosted cell, the union span mask of every transmission the cell's
/// nodes start. Drained at each barrier round by
/// [`GroupRun::drain_border`]. Purely observational — shares the
/// simulator's single observer slot through [`FanOut`] and never
/// influences scheduling, so arming it cannot perturb the run.
struct BorderRecorder {
    /// Local node id → index of its cell in the group's `built` list.
    cell_of: Vec<usize>,
    /// Shared with the owning [`GroupRun`] (`Rc`: the recorder lives
    /// inside the simulator, the drain happens outside it).
    masks: Rc<RefCell<Vec<u32>>>,
}

impl SimObserver for BorderRecorder {
    fn on_tx_start(&mut self, _now: SimTime, tx: &Transmission) {
        self.masks.borrow_mut()[self.cell_of[tx.src]] |= span_mask(tx.channel);
    }
}

type BorderMasks = Rc<RefCell<Vec<u32>>>;

fn build_group(
    city: &CityScenario,
    cells: &[usize],
    record_border: bool,
) -> (Simulator, Vec<BuiltCell>, Vec<NodeId>, Option<BorderMasks>) {
    let mut sim = Simulator::new(city.seed);
    // The fault plan must precede every add_node (fault streams are
    // drawn at registration, keyed on the node's global stream id).
    if let Some(plan) = &city.faults {
        sim.set_fault_plan(plan.clone());
    }
    let mut built = Vec::with_capacity(cells.len());
    let mut local_to_global: Vec<NodeId> = Vec::new();
    for &c in cells {
        let cell = &city.cells[c];
        let base = city.node_base(c);
        let initial = cell.initial_channel();
        let ssid = u32::try_from(c + 1).unwrap_or(u32::MAX);
        let incumbents = Scenario::incumbents_for(cell.map, cell.extra_incumbents.as_ref());
        let bank = OracleBank::new(OracleConfig {
            adaptive: true,
            ..OracleConfig::default()
        });

        let mut ap_cfg = city.ap_config.clone();
        ap_cfg.adaptive = true;
        ap_cfg.downlink_bytes = Some(city.downlink_bytes);
        ap_cfg.downlink_interval = None;

        let mut ap_node_cfg = NodeConfig::on_channel(initial)
            .ap()
            .in_ssid(ssid)
            .at(cell.pos.0, cell.pos.1)
            .rng_stream(base as u64) // stream-map: domain=sim-nodes salt=scenario-seed streams=0..=4294967295 role="city AP (global node base)"
            .with_incumbents(incumbents.clone());
        ap_node_cfg.range = cell.range;
        let ap_detection = ap_node_cfg.detection_delay;
        let ap_local = sim.add_node(ap_node_cfg, Box::new(ApBehavior::new(ap_cfg)));
        bank.add_member_as(
            ap_local,
            base,
            true,
            &incumbents,
            ap_detection + sim.fault_detection_extra(ap_local),
        );
        local_to_global.push(base);

        let mut clients_local = Vec::with_capacity(cell.n_clients);
        for i in 0..cell.n_clients {
            let global = base + 1 + i;
            let mut node_cfg = NodeConfig::on_channel(initial)
                .in_ssid(ssid)
                .at(cell.pos.0, cell.pos.1)
                .rng_stream(global as u64) // stream-map: domain=sim-nodes salt=scenario-seed streams=1..=4294967295 role="city clients (global node id)"
                .with_incumbents(incumbents.clone());
            node_cfg.range = cell.range;
            let detection = node_cfg.detection_delay;
            let slot = u8::try_from(i % 16).unwrap_or(0); // i % 16 < 16, always fits
            let mut ccfg = ClientConfig::new(ap_local, slot);
            if let Some(bytes) = city.uplink_bytes {
                ccfg = ccfg.saturating_uplink(bytes);
            }
            let local = sim.add_node(node_cfg, Box::new(ClientBehavior::new(ccfg)));
            bank.add_member_as(
                local,
                global,
                false,
                &incumbents,
                detection + sim.fault_detection_extra(local),
            );
            local_to_global.push(global);
            clients_local.push(local);
        }

        built.push(BuiltCell {
            global_cell: c,
            footprint: cell.footprint(),
            ap_local,
            clients_local,
            bank,
        });
    }
    let mut observers: Vec<Box<dyn SimObserver>> =
        built.iter().map(|b| b.bank.observer()).collect();
    let border_masks = record_border.then(|| {
        let mut cell_of = vec![usize::MAX; local_to_global.len()];
        for (k, bc) in built.iter().enumerate() {
            cell_of[bc.ap_local] = k;
            for &c in &bc.clients_local {
                cell_of[c] = k;
            }
        }
        let masks: BorderMasks = Rc::new(RefCell::new(vec![0u32; built.len()]));
        observers.push(Box::new(BorderRecorder {
            cell_of,
            masks: Rc::clone(&masks),
        }));
        masks
    });
    sim.set_observer(Box::new(FanOut(observers)));
    (sim, built, local_to_global, border_masks)
}

/// One lookahead-barrier round of the city's global schedule: advance
/// to `to`, then (for the round closing a tick) reset stats after
/// warmup or take the timeline sample.
#[derive(Debug, Clone, Copy)]
struct CityRound {
    /// Absolute target time of this round (offset from `SimTime::ZERO`).
    to: SimDuration,
    /// Reset statistics after advancing (the round that ends warmup).
    reset: bool,
    /// Take a timeline sample after advancing.
    sample: bool,
}

/// The global barrier schedule every shard group follows in lockstep:
/// warmup and each sampling tick, chopped into `sync_window` chunks.
/// One entry per barrier round, so `sync_rounds` counts — and, under
/// the cut protocol, boundary exchanges happen — exactly once per
/// chunk. A pure function of the scenario's durations, hence identical
/// across groups, shardings and partitions; the chunking reproduces the
/// historical `advance()` loop byte for byte (a time-ordered event loop
/// cannot observe where `run_until` calls are split).
fn city_rounds(city: &CityScenario) -> Vec<CityRound> {
    assert!(
        city.sync_window > SimDuration::ZERO,
        "sync_window must be positive"
    );
    let mut rounds = Vec::new();
    let mut prev = SimDuration::ZERO;
    let mut tick = |prev: &mut SimDuration, to: SimDuration, reset: bool, sample: bool| {
        while *prev < to {
            let mut next = *prev + city.sync_window;
            if next > to {
                next = to;
            }
            let last = next >= to;
            rounds.push(CityRound {
                to: next,
                reset: reset && last,
                sample: sample && last,
            });
            *prev = next;
        }
    };
    tick(&mut prev, city.warmup, true, false);
    let end = city.warmup + city.duration;
    let mut t = city.warmup;
    while t < end {
        t += city.sample_interval;
        if t > end {
            t = end;
        }
        tick(&mut prev, t, false, true);
    }
    rounds
}

/// A shard group mid-run: the private simulator plus everything needed
/// to step it round by round and assemble its [`GroupOutcome`].
/// [`run_city_group`] wraps it start-to-finish; the cut drivers
/// interleave [`GroupRun::step`] across groups with boundary exchanges.
/// Holds an `Rc` (the border recorder), so a pooled worker builds and
/// finishes it entirely on its own thread, returning only the plain
/// outcome.
struct GroupRun {
    sim: Simulator,
    built: Vec<BuiltCell>,
    local_to_global: Vec<NodeId>,
    samples: Vec<Vec<Sample>>,
    last_total: Vec<u64>,
    sync_rounds: u64,
    /// Per-`built`-cell union span masks since the last drain; `None`
    /// when border recording is off (component-partition runs).
    border_masks: Option<Rc<RefCell<Vec<u32>>>>,
}

impl GroupRun {
    fn new(city: &CityScenario, cells: &[usize], record_border: bool) -> Self {
        let (mut sim, built, local_to_global, border_masks) =
            build_group(city, cells, record_border);
        // Every city simulator runs with the lookahead assert armed:
        // the cut protocol's soundness leans on the decision-to-fire
        // bound, so component-partition runs police it too (it is
        // observational — arming cannot change any outcome).
        sim.set_min_tx_lookahead(Some(cut_lookahead()));
        let n = built.len();
        Self {
            sim,
            built,
            local_to_global,
            samples: vec![Vec::new(); n],
            last_total: vec![0u64; n],
            sync_rounds: 0,
            border_masks,
        }
    }

    /// Advances one barrier round: run to the round target, assert that
    /// no node escaped its cell's channel footprint (the load-bearing
    /// soundness condition of both partitions), then apply the round's
    /// reset/sample action.
    fn step(&mut self, round: CityRound) {
        self.sim.run_until(SimTime::ZERO + round.to);
        for bc in &self.built {
            for &n in std::iter::once(&bc.ap_local).chain(bc.clients_local.iter()) {
                let ch = self.sim.node_channel(n);
                assert!(
                    channel_in_footprint(ch, bc.footprint),
                    "node {n} (cell {}) on {ch} escaped its cell footprint {:#010x} — \
                     influence sharding would be unsound",
                    bc.global_cell,
                    bc.footprint,
                );
            }
        }
        self.sync_rounds += 1;
        if round.reset {
            self.sim.reset_stats();
        }
        if round.sample {
            for (k, bc) in self.built.iter().enumerate() {
                let total: u64 = bc
                    .clients_local
                    .iter()
                    .map(|&c| self.sim.stats(c).rx_data_bytes + self.sim.stats(c).tx_acked_bytes)
                    .sum();
                self.samples[k].push(Sample {
                    t: SimTime::ZERO + round.to,
                    ap_channel: self.sim.node_channel(bc.ap_local),
                    bytes_delta: total - self.last_total[k],
                });
                self.last_total[k] = total;
            }
        }
    }

    /// Drains the border recorder: the `(global cell, union span mask)`
    /// activity of this group's border cells since the last drain.
    /// Clears every mask (non-border activity is provably unobservable
    /// across the cut — no directed edge leaves a non-border cell — so
    /// it is dropped, keeping exchanges small).
    fn drain_border(&mut self, border: &[usize]) -> BorderActivity {
        let Some(masks) = &self.border_masks else {
            return Vec::new();
        };
        let mut masks = masks.borrow_mut();
        let mut out = Vec::new();
        for (k, bc) in self.built.iter().enumerate() {
            let mask = masks[k];
            masks[k] = 0;
            if mask != 0 && border.binary_search(&bc.global_cell).is_ok() {
                out.push((bc.global_cell, mask));
            }
        }
        out
    }

    /// Assembles the group's outcome after the last round.
    fn finish(mut self, city: &CityScenario) -> GroupOutcome {
        let span = city.duration;
        let mut cell_outcomes = Vec::with_capacity(self.built.len());
        for (k, bc) in self.built.iter().enumerate() {
            let per_client_mbps: Vec<f64> = bc
                .clients_local
                .iter()
                .map(|&c| {
                    let s = self.sim.stats(c);
                    (s.rx_data_bytes + s.tx_acked_bytes) as f64 * 8.0 / span.as_secs_f64() / 1e6
                })
                .collect();
            let aggregate_mbps = per_client_mbps.iter().sum();
            let mut violations = self.sim.stats(bc.ap_local).incumbent_violations;
            for &c in &bc.clients_local {
                violations += self.sim.stats(c).incumbent_violations;
            }
            cell_outcomes.push((
                bc.global_cell,
                ScenarioOutcome {
                    per_client_mbps,
                    aggregate_mbps,
                    samples: std::mem::take(&mut self.samples[k]),
                    violations,
                    oracle: bc.bank.finish(&self.sim),
                },
            ));
        }

        let fault_events = self
            .sim
            .fault_events()
            .iter()
            .map(|e| FaultEvent {
                time: e.time,
                node: self.local_to_global[e.node],
                kind: e.kind,
            })
            .collect();

        GroupOutcome {
            cells: cell_outcomes,
            fault_events,
            sync_rounds: self.sync_rounds,
            events: self.sim.event_counters(),
        }
    }
}

/// Simulates one shard group — the cells with the given global indices
/// (ascending) — start to finish in a private [`Simulator`], and
/// returns plain data. Pure function of `(city, cells)`: callers may
/// run groups sequentially, or fan them out across worker threads and
/// reduce with [`merge_city`].
pub fn run_city_group(city: &CityScenario, cells: &[usize]) -> GroupOutcome {
    let mut run = GroupRun::new(city, cells, false);
    for round in city_rounds(city) {
        run.step(round);
    }
    run.finish(city)
}

fn add_counters(a: EventCounters, b: EventCounters) -> EventCounters {
    EventCounters {
        scheduled: a.scheduled + b.scheduled,
        handled: a.handled + b.handled,
        stale_tentative: a.stale_tentative + b.stale_tentative,
        stale_ack_timeout: a.stale_ack_timeout + b.stale_ack_timeout,
        lazy_elided: a.lazy_elided + b.lazy_elided,
    }
}

/// Reduces the shard groups' outcomes — in *any* order — into the
/// canonical [`CityOutcome`]: cells sorted by global index (and checked
/// to cover the city exactly once), fault events stably sorted by
/// `(time, global node)`. Returns the merged scheduling counters
/// alongside.
pub fn merge_city(
    city: &CityScenario,
    groups: Vec<GroupOutcome>,
) -> (CityOutcome, u64, EventCounters) {
    let mut sync_rounds = 0u64;
    let mut events = EventCounters::default();
    let mut cells: Vec<(usize, ScenarioOutcome)> = Vec::with_capacity(city.cells.len());
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    for g in groups {
        sync_rounds += g.sync_rounds;
        events = add_counters(events, g.events);
        cells.extend(g.cells);
        fault_events.extend(g.fault_events);
    }
    cells.sort_by_key(|c| c.0);
    assert_eq!(
        cells.len(),
        city.cells.len(),
        "shard groups must cover every cell exactly once"
    );
    for (k, (idx, _)) in cells.iter().enumerate() {
        assert_eq!(*idx, k, "shard groups must cover every cell exactly once");
    }
    // Remaining (time, node) ties originate within one simulator (node
    // ids are disjoint across groups), so a stable sort reproduces the
    // single-simulator event order regardless of group arrival order.
    fault_events.sort_by_key(|e| (e.time.as_nanos(), e.node));
    let aggregate_mbps = cells.iter().map(|(_, o)| o.aggregate_mbps).sum();
    (
        CityOutcome {
            cells: cells.into_iter().map(|(_, o)| o).collect(),
            aggregate_mbps,
            fault_events,
        },
        sync_rounds,
        events,
    )
}

/// Does any remote border activity defeat the silence certificate?
/// `sensitivity` and `remote` are both ascending by cell; a contact is
/// a remote source cell whose round mask intersects the union footprint
/// of the local cells it can reach.
fn certified_silent(sensitivity: &[(usize, u32)], remote: &BorderActivity) -> bool {
    remote.iter().all(
        |&(cell, mask)| match sensitivity.binary_search_by_key(&cell, |p| p.0) {
            Ok(i) => mask & sensitivity[i].1 == 0,
            Err(_) => true,
        },
    )
}

/// Runs one cut group on the shared [`BoundaryBus`] (pooled execution:
/// every group of `plan` must be running concurrently on a bus built
/// with `plan.groups.len()` slots, or the blocking exchange deadlocks).
/// Steps the global round schedule, exchanging border activity and
/// certifying silence at every barrier. On contact — observed locally
/// or flagged by a peer — the group abandons the attempt; the caller
/// must then discard *all* groups' results and fall back to
/// [`CityPartition::Components`], so the nondeterministic timing of the
/// abort never reaches an outcome.
pub fn run_city_cut_group(
    city: &CityScenario,
    plan: &CutPlan,
    group: usize,
    bus: &BoundaryBus,
) -> Result<GroupOutcome, CutContact> {
    assert_eq!(bus.groups(), plan.groups.len(), "bus sized to the plan");
    let mut run = GroupRun::new(city, &plan.groups[group], true);
    for (round_no, round) in city_rounds(city).into_iter().enumerate() {
        run.step(round);
        let activity = run.drain_border(&plan.border[group]);
        let remote = bus.exchange(group, round_no, activity)?;
        if !certified_silent(&plan.sensitivity[group], &remote) {
            bus.flag_contact();
            return Err(CutContact);
        }
    }
    Ok(run.finish(city))
}

/// Sequential lockstep driver of the cut protocol: steps every group
/// one round, publishes all border activity, then certifies every
/// group. Returns the groups' outcomes, or `Err(CutContact)` on the
/// first round any certificate fails.
fn run_city_cut_sequential(
    city: &CityScenario,
    plan: &CutPlan,
) -> Result<Vec<GroupOutcome>, CutContact> {
    let n = plan.groups.len();
    let bus = BoundaryBus::new(n);
    let mut runs: Vec<GroupRun> = plan
        .groups
        .iter()
        .map(|g| GroupRun::new(city, g, true))
        .collect();
    for (round_no, round) in city_rounds(city).into_iter().enumerate() {
        for (g, run) in runs.iter_mut().enumerate() {
            run.step(round);
            let activity = run.drain_border(&plan.border[g]);
            bus.publish(g, round_no, activity);
        }
        for g in 0..runs.len() {
            let remote = bus.collect_others(g, round_no);
            if !certified_silent(&plan.sensitivity[g], &remote) {
                return Err(CutContact);
            }
        }
    }
    Ok(runs.into_iter().map(|r| r.finish(city)).collect())
}

/// Runs the whole city at the given shard count under the chosen
/// partition, sequentially, and merges. `shards == 1` under
/// [`CityPartition::Components`] *is* the unsharded reference: one
/// simulator hosting every cell. Parallel execution lives in the bench
/// harness (its worker pool calls [`run_city_group`] /
/// [`run_city_cut_group`] per group and reduces with [`merge_city`]);
/// outcomes are identical by construction either way — and identical
/// *across partitions*: a cut run either certifies silent on every
/// round (provably equal to unsharded, DESIGN.md §14) or falls back to
/// the component plan wholesale.
pub fn run_city_with(
    city: &CityScenario,
    shards: usize,
    partition: CityPartition,
) -> (CityOutcome, CityRunStats) {
    match partition {
        CityPartition::Components => {
            let plan = shard_plan(city, shards);
            let n_groups = plan.groups.len();
            let groups: Vec<GroupOutcome> = plan
                .groups
                .iter()
                .map(|g| run_city_group(city, g))
                .collect();
            let (outcome, sync_rounds, events) = merge_city(city, groups);
            (
                outcome,
                CityRunStats {
                    groups: n_groups,
                    components: plan.components,
                    sync_rounds,
                    events,
                    largest_component_fraction: largest_component_fraction(city),
                    load_imbalance: load_imbalance(city, &plan.groups, shards),
                    cut_pairs: 0,
                    fallback: false,
                },
            )
        }
        CityPartition::Cut => {
            let plan = shard_plan_cut(city, shards);
            match run_city_cut_sequential(city, &plan) {
                Ok(groups) => {
                    let n_groups = plan.groups.len();
                    let (outcome, sync_rounds, events) = merge_city(city, groups);
                    (
                        outcome,
                        CityRunStats {
                            groups: n_groups,
                            components: plan.components,
                            sync_rounds,
                            events,
                            largest_component_fraction: plan.largest_component_fraction,
                            load_imbalance: plan.load_imbalance,
                            cut_pairs: plan.cut_pairs.len(),
                            fallback: false,
                        },
                    )
                }
                Err(CutContact) => {
                    let (outcome, stats) = run_city_with(city, shards, CityPartition::Components);
                    (
                        outcome,
                        CityRunStats {
                            cut_pairs: plan.cut_pairs.len(),
                            fallback: true,
                            ..stats
                        },
                    )
                }
            }
        }
    }
}

/// [`run_city_with`] under [`CityPartition::Components`] — the
/// historical entry point; every existing caller keeps its exact
/// behaviour.
pub fn run_city(city: &CityScenario, shards: usize) -> (CityOutcome, CityRunStats) {
    run_city_with(city, shards, CityPartition::Components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_mac::potential_influences;

    fn quick_city(seed: u64, n_aps: usize, spacing: f64, range: f64) -> CityScenario {
        let mut city = CityScenario::grid(seed, n_aps, 1, spacing, range);
        city.warmup = SimDuration::from_millis(400);
        city.duration = SimDuration::from_millis(800);
        city.sample_interval = SimDuration::from_millis(200);
        city
    }

    #[test]
    fn shard_plan_covers_every_cell_once() {
        let city = quick_city(7, 9, 100.0, 120.0);
        for shards in [1, 2, 4, 9, 100] {
            let plan = shard_plan(&city, shards);
            let mut seen: Vec<usize> = plan.groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>(), "shards {shards}");
            assert!(plan.groups.len() <= shards.max(1));
        }
    }

    #[test]
    fn cross_group_cells_never_potentially_influence() {
        let city = quick_city(3, 12, 100.0, 150.0);
        let sites: Vec<ShardSite> = city.cells.iter().map(CityCell::shard_site).collect();
        let plan = shard_plan(&city, 4);
        for (ga, a_cells) in plan.groups.iter().enumerate() {
            for (gb, b_cells) in plan.groups.iter().enumerate() {
                if ga == gb {
                    continue;
                }
                for &a in a_cells {
                    for &b in b_cells {
                        assert!(
                            !potential_influences(&sites[a], &sites[b]),
                            "cells {a} and {b} influence across groups {ga}/{gb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_equals_unsharded_small_city() {
        // Spacing below range: some neighbouring cells couple, so the
        // plan has real multi-cell components *and* singleton ones.
        let city = quick_city(11, 6, 100.0, 110.0);
        let (base, base_stats) = run_city(&city, 1);
        assert_eq!(base_stats.groups, 1);
        assert!(base.cells.iter().all(|c| c.oracle.checked_tx > 0));
        for shards in [2, 4] {
            let (out, stats) = run_city(&city, shards);
            assert_eq!(base, out, "shards {shards} diverged from unsharded");
            assert!(stats.sync_rounds > 0);
        }
    }

    #[test]
    fn sharded_equals_unsharded_with_faults() {
        let mut city = quick_city(13, 4, 100.0, 90.0);
        city.faults = Some(FaultPlan {
            seed: 5,
            drop_prob: 0.05,
            dup_prob: 0.05,
            delay_prob: 0.05,
            max_delay: SimDuration::from_micros(800),
            max_detection_extra: SimDuration::from_millis(20),
            history_skew: None,
        });
        let (base, _) = run_city(&city, 1);
        let (out, stats) = run_city(&city, 3);
        assert!(stats.groups > 1, "faulted city did not actually shard");
        assert_eq!(base, out);
        assert!(
            !base.fault_events.is_empty(),
            "fault plan injected nothing — test exercises no fault merging"
        );
    }

    #[test]
    fn merge_is_group_order_independent() {
        let city = quick_city(17, 4, 100.0, 90.0);
        let plan = shard_plan(&city, 4);
        assert!(plan.groups.len() > 1);
        let groups: Vec<GroupOutcome> = plan
            .groups
            .iter()
            .map(|g| run_city_group(&city, g))
            .collect();
        let (fwd, fwd_rounds, fwd_events) = merge_city(&city, groups.clone());
        let mut rev = groups;
        rev.reverse();
        let (bwd, bwd_rounds, bwd_events) = merge_city(&city, rev);
        assert_eq!(fwd, bwd);
        assert_eq!(fwd_rounds, bwd_rounds);
        assert_eq!(fwd_events, bwd_events);
    }

    #[test]
    fn cut_plan_degenerates_to_components_when_they_suffice() {
        // Decoupled grid: every cell its own component, so the cut
        // planner must return the component plan with no cut edges.
        let city = quick_city(7, 9, 150.0, 60.0);
        let base = shard_plan(&city, 4);
        let cut = shard_plan_cut(&city, 4);
        assert_eq!(cut.groups, base.groups);
        assert_eq!(cut.components, base.components);
        assert!(cut.cut_pairs.is_empty());
        assert!(cut.border.iter().all(Vec::is_empty));
        assert!(cut.sensitivity.iter().all(Vec::is_empty));
        assert!((cut.load_imbalance - load_imbalance(&city, &cut.groups, 4)).abs() < 1e-12);
    }

    #[test]
    fn cut_plan_splits_single_component_and_covers_cells() {
        let city = CityScenario::checkerboard(21, 9, 1);
        let base = shard_plan(&city, 4);
        assert_eq!(
            base.components, 1,
            "checkerboard must chain into one component"
        );
        assert_eq!(base.groups.len(), 1, "component planner cannot split it");
        for shards in [2, 4, 8] {
            let cut = shard_plan_cut(&city, shards);
            assert_eq!(cut.groups.len(), shards.min(9), "shards {shards}");
            let mut seen: Vec<usize> = cut.groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>());
            assert!(
                !cut.cut_pairs.is_empty(),
                "splitting one component must cut edges"
            );
            // Directed pairs cross groups and index the border/
            // sensitivity tables consistently.
            let mut group_of = [0usize; 9];
            for (g, cells) in cut.groups.iter().enumerate() {
                for &c in cells {
                    group_of[c] = g;
                }
            }
            for &(a, b) in &cut.cut_pairs {
                assert_ne!(group_of[a], group_of[b]);
                assert!(cut.border[group_of[a]].binary_search(&a).is_ok());
                assert!(cut.sensitivity[group_of[b]]
                    .binary_search_by_key(&a, |p| p.0)
                    .is_ok());
            }
            assert!((cut.largest_component_fraction - 1.0).abs() < 1e-12);
        }
    }

    /// The tentpole's acceptance contract in miniature: a city the
    /// component planner cannot split at all runs split 4 ways under
    /// the cut protocol, certifies silent on every round, and the
    /// outcome is byte-identical to the unsharded run.
    #[test]
    fn checkerboard_cut_certifies_silent_and_matches_unsharded() {
        let mut city = CityScenario::checkerboard(23, 9, 1);
        city.warmup = SimDuration::from_millis(400);
        city.duration = SimDuration::from_millis(800);
        city.sample_interval = SimDuration::from_millis(200);
        let (base, base_stats) = run_city(&city, 4);
        assert_eq!(base_stats.groups, 1, "one component ⇒ one component group");
        assert!((base_stats.largest_component_fraction - 1.0).abs() < 1e-12);
        let (out, stats) = run_city_with(&city, 4, CityPartition::Cut);
        assert_eq!(stats.groups, 4, "cut must actually split");
        assert!(
            !stats.fallback,
            "checkerboard interiors must certify silent"
        );
        assert!(stats.cut_pairs > 0);
        assert!(stats.load_imbalance < base_stats.load_imbalance);
        assert_eq!(base, out, "cut-sharded outcome diverged from unsharded");
    }

    /// Cells in active contact across a cut: certification must fail
    /// and the deterministic fallback must reproduce the component
    /// (here: unsharded) outcome exactly.
    #[test]
    fn cut_falls_back_on_contact_and_stays_exact() {
        let mut city = quick_city(19, 2, 50.0, 110.0);
        for cell in &mut city.cells {
            cell.locale = Locale::Suburban;
            cell.map = Locale::Suburban.map();
        }
        let (base, _) = run_city(&city, 1);
        let (out, stats) = run_city_with(&city, 2, CityPartition::Cut);
        assert!(
            stats.fallback,
            "co-channel cells in reach cannot certify silent"
        );
        assert!(stats.cut_pairs > 0);
        assert_eq!(base, out, "fallback outcome diverged from unsharded");
    }

    /// The round schedule reproduces the historical `advance()`
    /// chunking exactly: windows clamped per tick, reset closing the
    /// warmup tick, one sample closing each sampling tick.
    #[test]
    fn city_rounds_match_the_historical_chunking() {
        let mut city = quick_city(3, 2, 150.0, 60.0);
        city.warmup = SimDuration::from_millis(500);
        city.duration = SimDuration::from_millis(450);
        city.sample_interval = SimDuration::from_millis(200);
        city.sync_window = SimDuration::from_millis(200);
        let rounds = city_rounds(&city);
        let targets: Vec<(u64, bool, bool)> = rounds
            .iter()
            .map(|r| (r.to.as_nanos() / 1_000_000, r.reset, r.sample))
            .collect();
        assert_eq!(
            targets,
            vec![
                (200, false, false),
                (400, false, false),
                (500, true, false),
                (700, false, true),
                (900, false, true),
                (950, false, true),
            ]
        );
    }

    #[test]
    fn grid_is_deterministic_and_mixed() {
        let a = CityScenario::grid(42, 64, 2, 100.0, 80.0);
        let b = CityScenario::grid(42, 64, 2, 100.0, 80.0);
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.locale, cb.locale);
            assert_eq!(ca.pos, cb.pos);
        }
        let mut kinds: Vec<Locale> = a.cells.iter().map(|c| c.locale).collect();
        kinds.dedup();
        assert!(kinds.len() > 1, "locale mix collapsed to one class");
    }
}
