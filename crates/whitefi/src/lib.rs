//! WhiteFi — the paper's primary contribution, reproduced as a library.
//!
//! WhiteFi is "the first Wi-Fi like system constructed on top of UHF white
//! spaces" (SIGCOMM 2009). This crate implements its three innovations on
//! top of the `whitefi-spectrum` band model, the `whitefi-phy` signal
//! substrate, and the `whitefi-mac` discrete-event simulator:
//!
//! * [`mcham`] — the **multichannel airtime metric** (Equations 1–2) and
//!   the client-aware channel-selection objective
//!   `N·MCham_AP + Σ_n MCham_n`;
//! * [`assignment`] — the adaptive **spectrum assignment** algorithm:
//!   candidate enumeration over the combined spectrum map, MCham scoring,
//!   hysteresis, and voluntary/involuntary switch triggers (§4.1);
//! * [`discovery`] — **AP discovery**: the non-SIFT baseline, the linear
//!   L-SIFT scan, and the staggered J-SIFT scan with its centre-frequency
//!   endgame (Algorithm 1), plus the closed-form expected scan counts
//!   (§4.2.2);
//! * [`chirp`] — the **chirping disconnection protocol**: backup-channel
//!   signalling that never transmits over an incumbent (§4.3);
//! * [`ap`] / [`client`] — the AP and client state machines as
//!   [`whitefi_mac::Behavior`] implementations;
//! * [`driver`] — scenario construction and measurement used by the
//!   paper's evaluation (Figures 10–14, §5.3), including the OPT /
//!   OPT-5/10/20 baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod assignment;
pub mod chirp;
pub mod city;
pub mod client;
pub mod discovery;
pub mod driver;
pub mod mcham;
pub mod oracles;
pub mod scenario_file;
pub mod scenario_fuzz;

pub use ap::{ApBehavior, ApConfig};
pub use assignment::{Assigner, AssignerConfig};
pub use chirp::{backup_candidates, choose_backup, choose_secondary_backup, ChirpDetector};
pub use city::{
    largest_component_fraction, load_imbalance, merge_city, run_city, run_city_cut_group,
    run_city_group, run_city_with, shard_plan, shard_plan_cut, CityCell, CityOutcome,
    CityPartition, CityRunStats, CityScenario, CutPlan, GroupOutcome, Locale, ShardPlan,
};
pub use client::{ClientBehavior, ClientConfig, ClientStart};
pub use discovery::{
    baseline_discovery, expected_scans_baseline, expected_scans_j_sift, expected_scans_l_sift,
    j_sift_discovery, l_sift_discovery, sift_match_bursts, DiscoveryOutcome, JSiftMachine,
    ScanOracle, ScanStep, SyntheticOracle,
};
pub use driver::{
    run_fixed, run_whitefi, BackgroundTraffic, Scenario, ScenarioOutcome, StaticBaselines,
};
pub use oracles::{
    global_oracle_totals, OracleBank, OracleConfig, OracleKind, OracleReport, OracleTotals,
    Violation,
};
pub use scenario_file::{
    load, locale_contrast_phases, parse_str, run_discovery_sweep, run_roadtrip, CaseOutcome,
    CompiledCase, CompiledCity, CompiledSingleAp, LoadError, ScenarioDoc, SchemaError,
};
pub use scenario_fuzz::{generate_doc, generate_file, sample_fault_plan};

pub use mcham::{
    evaluate_all, mcham, mcham_with, objective_score, select_channel, select_channel_with,
    Combiner, NodeReport, Objective, RhoTable,
};
