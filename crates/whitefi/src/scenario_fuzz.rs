//! Seeded generative fuzzer over the [`crate::scenario_file`] schema:
//! mass-produces *valid* scenario documents for the torture and oracle
//! suites (DESIGN.md §15).
//!
//! Determinism contract (the PR 3 placement-independence rule): every
//! field family draws from its **own** ChaCha8 stream of one seed-keyed
//! RNG family, so adding draws to one family (say, a richer background
//! generator) never shifts the values another family produces for the
//! same seed. `generate_file(seed)` is therefore a pure function of the
//! seed, byte for byte, across code growth within a family-preserving
//! change.
//!
//! Every generated document survives [`crate::scenario_file::parse_str`]
//! validation by construction: strikes land on distinct free channels
//! inside the run horizon, background pairs use admitted channels, and
//! fault probabilities stay inside the `sim_torture` bounds.

use crate::city::CityScenario;
use crate::scenario_file::{
    BgSpec, CellOverride, CityDoc, GridSpec, MapSpec, MicAt, MicStorm, MicStrike, PartitionSpec,
    RunSpec, ScenarioDoc, SeedSource, SingleApDoc, TrafficSpec,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whitefi_mac::FaultPlan;
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{UhfChannel, NUM_UHF_CHANNELS};

/// Salt mixed into every fuzz seed so fuzzer streams never collide with
/// simulator node streams derived from the same integer.
const FUZZ_SALT: u64 = 0x5CE0_F022_0001_u64;

/// Stream id: document kind selection.
const STREAM_KIND: u64 = 0;
/// Stream id: topology (client population, grid shape).
const STREAM_TOPOLOGY: u64 = 1;
/// Stream id: spectrum map fragments.
const STREAM_MAP: u64 = 2;
/// Stream id: timing (warmup, duration, sampling).
const STREAM_TIMING: u64 = 3;
/// Stream id: mic strike schedules and storms.
const STREAM_MICS: u64 = 4;
/// Stream id: background traffic mixes.
const STREAM_BACKGROUND: u64 = 5;
/// Stream id: fault plans.
const STREAM_FAULTS: u64 = 6;
/// Stream id: run mode.
const STREAM_RUN: u64 = 7;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One per-family RNG of the fuzz seed's stream family.
fn stream(seed: u64, id: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(seed ^ FUZZ_SALT));
    rng.set_stream(id); // stream-map: domain=fuzz-fields salt=FUZZ_SALT streams=0..=7 role="per-field fuzz draws (STREAM_* lanes)"
    rng
}

/// Milliseconds → schema seconds with an exact decimal representation.
#[allow(clippy::cast_precision_loss)] // fuzzer times are < 1e6 ms
fn ms_dur(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// Samples a spectrum map of 2–3 disjoint free fragments (width 1–4)
/// spread over the band — the fragmentation regimes of Figure 2.
fn sample_map(seed: u64) -> MapSpec {
    let mut rng = stream(seed, STREAM_MAP);
    let fragments = rng.gen_range(2..=3usize);
    let mut free: Vec<usize> = Vec::new();
    let mut cursor = rng.gen_range(0..3usize);
    for _ in 0..fragments {
        let width = rng.gen_range(1..=4usize);
        if cursor + width > NUM_UHF_CHANNELS {
            break;
        }
        free.extend(cursor..cursor + width);
        // Skip at least one occupied channel so fragments stay disjoint.
        cursor += width + rng.gen_range(1..=6usize);
    }
    if free.is_empty() {
        // Unreachable with the ranges above, but keep the generator
        // total: fall back to a single mid-band channel.
        free.push(10);
    }
    MapSpec::Free(free)
}

/// Samples a `sim_torture`-bounded fault plan: drop ≤ 0.25, dup ≤ 0.2,
/// delay ≤ 0.2, delivery delays 1–4 ms, detection stretch ≤ 100 ms,
/// and a 1-in-4 chance of 1–5 s history skew.
pub fn sample_fault_plan(seed: u64) -> FaultPlan {
    let mut rng = stream(seed, STREAM_FAULTS);
    let quarter = |rng: &mut ChaCha8Rng, max: f64| {
        #[allow(clippy::cast_precision_loss)] // percent grid is tiny
        let pct = rng.gen_range(0..=100u32) as f64 / 100.0;
        // Two-decimal grid keeps the serialized plan byte-stable.
        (pct * max * 100.0).round() / 100.0
    };
    let drop_prob = quarter(&mut rng, 0.25);
    let dup_prob = quarter(&mut rng, 0.2);
    let delay_prob = quarter(&mut rng, 0.2);
    let max_delay = ms_dur(rng.gen_range(1..=4u64));
    let max_detection_extra = ms_dur(rng.gen_range(0..=100u64));
    let history_skew = if rng.gen_range(0..4u32) == 0 {
        Some(SimDuration::from_secs(rng.gen_range(1..=5u64)))
    } else {
        None
    };
    FaultPlan {
        seed: rng.gen(),
        drop_prob,
        dup_prob,
        delay_prob,
        max_delay,
        max_detection_extra,
        history_skew,
    }
}

fn sample_traffic(rng: &mut ChaCha8Rng) -> TrafficSpec {
    let interval = ms_dur(rng.gen_range(10..=50u64));
    match rng.gen_range(0..3u32) {
        0 => TrafficSpec::Cbr { interval },
        1 => TrafficSpec::Markov {
            interval,
            mean_active: ms_dur(rng.gen_range(200..=800u64)),
            mean_passive: ms_dur(rng.gen_range(200..=800u64)),
        },
        _ => TrafficSpec::Diurnal {
            interval,
            on: ms_dur(rng.gen_range(300..=900u64)),
            off: ms_dur(rng.gen_range(100..=600u64)),
            phase: ms_dur(rng.gen_range(0..=400u64)),
        },
    }
}

/// Samples a single-AP document.
pub fn generate_single_ap(seed: u64) -> SingleApDoc {
    let map = sample_map(seed);
    let built = map.build();
    let free: Vec<UhfChannel> = built.free_channels().collect();
    let admitted = built.available_channels();

    let mut topo = stream(seed, STREAM_TOPOLOGY);
    let clients = topo.gen_range(1..=3usize);

    let mut timing = stream(seed, STREAM_TIMING);
    let warmup_ms = 500 * timing.gen_range(1..=2u64);
    let duration_ms = 500 * timing.gen_range(4..=8u64);
    let sample_ms = 100 * timing.gen_range(1..=5u64);
    let horizon_ms = warmup_ms + duration_ms;

    let mut micr = stream(seed, STREAM_MICS);
    let n_strikes = micr.gen_range(0..=2usize).min(free.len());
    // Distinct channels by construction, so strikes can never overlap.
    let mut channels = free.clone();
    let mut mics = Vec::new();
    for _ in 0..n_strikes {
        let ch = channels.remove(micr.gen_range(0..channels.len()));
        let on_ms = micr.gen_range(0..horizon_ms.saturating_sub(200).max(1));
        let off_ms = (on_ms + micr.gen_range(100..=1000u64)).min(horizon_ms);
        let at = match micr.gen_range(0..4u32) {
            0 => MicAt::Ap,
            1 => MicAt::Client(micr.gen_range(0..clients)),
            _ => MicAt::Everyone,
        };
        mics.push(MicStrike {
            channel: ch,
            on: SimTime::ZERO + ms_dur(on_ms),
            off: SimTime::ZERO + ms_dur(off_ms),
            at,
        });
    }
    let mic_storm = if micr.gen_range(0..4u32) == 0 {
        #[allow(clippy::cast_precision_loss)] // one-decimal grids
        Some(MicStorm {
            prob: f64::from(micr.gen_range(2..=5u32)) / 10.0,
            mean_off_s: f64::from(micr.gen_range(20..=60u32)),
            mean_on_s: f64::from(micr.gen_range(5..=15u32)),
            horizon: ms_dur(horizon_ms),
            seed: SeedSource::Fixed(micr.gen()),
        })
    } else {
        None
    };

    let mut bgr = stream(seed, STREAM_BACKGROUND);
    let n_bg = bgr.gen_range(0..=2usize).min(admitted.len());
    let mut bg_channels = admitted.clone();
    let mut background = Vec::new();
    for _ in 0..n_bg {
        let channel = bg_channels.remove(bgr.gen_range(0..bg_channels.len()));
        background.push(BgSpec {
            channel,
            traffic: sample_traffic(&mut bgr),
        });
    }

    let mut faultr = stream(seed, STREAM_FAULTS);
    let faults = faultr.gen_bool(0.5).then(|| sample_fault_plan(seed ^ 1));

    let mut runr = stream(seed, STREAM_RUN);
    let initial = if runr.gen_bool(0.5) && !admitted.is_empty() {
        Some(admitted[runr.gen_range(0..admitted.len())])
    } else {
        None
    };

    SingleApDoc {
        seed: splitmix64(seed),
        map,
        clients,
        warmup: ms_dur(warmup_ms),
        duration: ms_dur(duration_ms),
        sample_interval: ms_dur(sample_ms),
        downlink_bytes: 1000,
        uplink_bytes: Some(500),
        mics,
        mic_storm,
        background,
        faults,
        run: RunSpec::Whitefi { initial },
        contrast_fixed: None,
    }
}

/// Samples a city document (ms-scale durations keep a 32-case smoke
/// sweep fast).
pub fn generate_city(seed: u64) -> CityDoc {
    let city_seed = splitmix64(seed);
    let mut topo = stream(seed, STREAM_TOPOLOGY);
    let grid = if topo.gen_range(0..4u32) == 0 {
        GridSpec::Checkerboard {
            aps: topo.gen_range(2..=4usize),
            clients_per_ap: topo.gen_range(1..=2usize),
        }
    } else {
        GridSpec::Grid {
            aps: topo.gen_range(2..=5usize),
            clients_per_ap: topo.gen_range(1..=2usize),
            spacing_m: f64::from(topo.gen_range(90..=140u32)),
            range_m: f64::from(topo.gen_range(100..=150u32)),
        }
    };
    let aps = match grid {
        GridSpec::Grid { aps, .. } | GridSpec::Checkerboard { aps, .. } => aps,
    };

    let mut timing = stream(seed, STREAM_TIMING);
    let warmup = ms_dur(100 * timing.gen_range(1..=3u64));
    let duration = ms_dur(100 * timing.gen_range(2..=5u64));
    let sample_interval = ms_dur(50 * timing.gen_range(1..=2u64));
    let sync_window = ms_dur(50 * timing.gen_range(1..=2u64));

    // The base city decides which channels a cell strike may use.
    let base = match grid {
        GridSpec::Grid {
            aps,
            clients_per_ap,
            spacing_m,
            range_m,
        } => CityScenario::grid(city_seed, aps, clients_per_ap, spacing_m, range_m),
        GridSpec::Checkerboard {
            aps,
            clients_per_ap,
        } => CityScenario::checkerboard(city_seed, aps, clients_per_ap),
    };
    let mut micr = stream(seed, STREAM_MICS);
    let mut overrides = Vec::new();
    if micr.gen_bool(0.5) {
        let cell = micr.gen_range(0..base.cells.len());
        let free: Vec<UhfChannel> = base.cells[cell].map.free_channels().collect();
        if !free.is_empty() {
            let ch = free[micr.gen_range(0..free.len())];
            let horizon_ms = (warmup + duration).as_nanos() / 1_000_000;
            let on_ms = micr.gen_range(0..horizon_ms.max(1));
            let off_ms = (on_ms + micr.gen_range(50..=300u64)).min(horizon_ms.max(on_ms + 1));
            overrides.push(CellOverride {
                cell,
                mics: vec![MicStrike {
                    channel: ch,
                    on: SimTime::ZERO + ms_dur(on_ms),
                    off: SimTime::ZERO + ms_dur(off_ms),
                    at: MicAt::Everyone,
                }],
            });
        }
    }

    let mut faultr = stream(seed, STREAM_FAULTS);
    let faults = faultr.gen_bool(0.5).then(|| sample_fault_plan(seed ^ 1));

    let mut runr = stream(seed, STREAM_RUN);
    let shards = runr.gen_range(1..=4usize).min(aps);
    let partition = if runr.gen_bool(0.5) {
        PartitionSpec::Cut
    } else {
        PartitionSpec::Components
    };

    CityDoc {
        seed: city_seed,
        grid,
        warmup,
        duration,
        sample_interval,
        sync_window,
        downlink_bytes: 1000,
        uplink_bytes: Some(500),
        overrides,
        faults,
        shards,
        partition,
    }
}

/// Samples a scenario document: 3-in-10 city, otherwise single-AP.
pub fn generate_doc(seed: u64) -> ScenarioDoc {
    let mut kind = stream(seed, STREAM_KIND);
    if kind.gen_range(0..10u32) < 3 {
        ScenarioDoc::City(generate_city(seed))
    } else {
        ScenarioDoc::SingleAp(generate_single_ap(seed))
    }
}

/// Samples a scenario document as canonical `.ron` bytes — a pure
/// function of the seed.
pub fn generate_file(seed: u64) -> String {
    generate_doc(seed).to_ron()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_file::parse_str;

    #[test]
    fn generated_files_are_valid_and_round_trip() {
        for seed in 0..48u64 {
            let ron = generate_file(seed);
            let doc = match parse_str(&ron) {
                Ok(d) => d,
                Err(e) => panic!("seed {seed}: generated file is invalid at {e}\n{ron}"),
            };
            assert_eq!(doc, generate_doc(seed), "seed {seed}");
            assert_eq!(doc.to_ron(), ron, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(generate_file(seed), generate_file(seed));
        }
    }

    #[test]
    fn fault_plans_respect_torture_bounds() {
        for seed in 0..64u64 {
            let p = sample_fault_plan(seed);
            assert!(p.drop_prob <= 0.25, "seed {seed}");
            assert!(p.dup_prob <= 0.2, "seed {seed}");
            assert!(p.delay_prob <= 0.2, "seed {seed}");
            assert!(p.max_delay <= SimDuration::from_millis(4));
            assert!(p.max_detection_extra <= SimDuration::from_millis(100));
            if let Some(skew) = p.history_skew {
                assert!(skew <= SimDuration::from_secs(5));
            }
        }
    }
}
