//! Declarative scenario files: a versioned, dependency-free RON-subset
//! schema that compiles to the existing [`Scenario`]/[`CityScenario`]
//! structs **byte-identically** to their hand-coded equivalents
//! (DESIGN.md §15).
//!
//! A document is one named struct — its name selects the kind:
//!
//! * `Scenario(...)` — a single-AP run ([`SingleApDoc`] →
//!   [`CompiledSingleAp`]), covering spectrum map, client population,
//!   timing, scripted and sampled ("storm") mic strikes, background
//!   traffic mixes (CBR, Markov churn, scripted and diurnal windows)
//!   and a full [`FaultPlan`];
//! * `City(...)` — a multi-AP city grid ([`CityDoc`] →
//!   [`CompiledCity`]) with per-cell strike overrides and shard plan;
//! * `LocaleContrast(...)` — the rural-vs-urban locale program
//!   ([`LocaleContrastDoc`], `examples/rural_broadband.rs`);
//! * `DiscoverySweep(...)` — the Figure 8 discovery race
//!   ([`DiscoverySweepDoc`], `examples/discovery_race.rs`);
//! * `Roadtrip(...)` — the geo-database mobility route
//!   ([`RoadtripDoc`], `examples/roadtrip.rs`).
//!
//! The grammar is the RON subset `ident`, integers, floats, strings,
//! `[lists]`, `Name(field: value, ...)` structs, `Name(v0, v1)` tuples,
//! `Some(x)`/`None`, with `//` and `/* */` comments and trailing
//! commas. Every diagnostic carries an exact `line:col`; [`load`]
//! prefixes the file path so failures print `file:line:col: message`.
//! No code path unwraps (whitefi-lint R4).

use crate::city::{run_city_with, CityOutcome, CityPartition, CityRunStats, CityScenario};
use crate::discovery::{baseline_discovery, j_sift_discovery, l_sift_discovery, SyntheticOracle};
use crate::driver::{
    run_fixed, run_whitefi, BackgroundPair, BackgroundTraffic, Scenario, ScenarioOutcome,
};
use crate::mcham::{select_channel, NodeReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use whitefi_mac::FaultPlan;
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{
    AirtimeVector, GeoDatabase, IncumbentSet, Locale, LocaleClass, Location, MicActivity,
    MicSchedule, SpectrumMap, StationRecord, UhfChannel, WfChannel, Width, WirelessMic,
    NUM_UHF_CHANNELS,
};

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// A parse or schema-validation error with an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line of the offending token/value.
    pub line: u32,
    /// 1-based column of the offending token/value.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl SchemaError {
    fn at(span: Span, msg: impl Into<String>) -> Self {
        Self {
            line: span.line,
            col: span.col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for SchemaError {}

/// A failure to load a scenario file: I/O or parse/schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// Path as given to [`load`].
        path: String,
        /// The OS error text.
        msg: String,
    },
    /// The file read but failed to parse or validate.
    Schema {
        /// Path as given to [`load`].
        path: String,
        /// The positioned diagnostic.
        err: SchemaError,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, msg } => write!(f, "{path}: {msg}"),
            LoadError::Schema { path, err } => write!(f, "{path}:{err}"),
        }
    }
}

impl std::error::Error for LoadError {}

type Res<T> = Result<T, SchemaError>;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i128),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v:?}`"),
            Tok::Str(_) => "string".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

#[derive(Debug, Clone)]
struct STok {
    tok: Tok,
    span: Span,
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            s: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Skips whitespace and `//` / `/* */` comments.
    fn skip_trivia(&mut self) -> Res<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.s.get(self.i + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.s.get(self.i + 1) == Some(&b'*') => {
                    let open = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(SchemaError::at(open, "unterminated block comment"))
                            }
                            Some(b'*') if self.s.get(self.i + 1) == Some(&b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, span: Span) -> Res<Tok> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut digits = 0usize;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            digits += 1;
        }
        if digits == 0 {
            return Err(SchemaError::at(span, "invalid number: expected digits"));
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            let mut exp_digits = 0usize;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
                exp_digits += 1;
            }
            if exp_digits == 0 {
                return Err(SchemaError::at(span, "invalid number: empty exponent"));
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| SchemaError::at(span, "invalid number encoding"))?;
        if float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| SchemaError::at(span, format!("invalid float literal `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Tok::Int)
                .map_err(|_| SchemaError::at(span, format!("integer literal `{text}` overflows")))
        }
    }

    fn lex_string(&mut self, span: Span) -> Res<Tok> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(SchemaError::at(span, "unterminated string literal")),
                Some(b'"') => return Ok(Tok::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    _ => return Err(SchemaError::at(span, "unsupported string escape")),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn tokens(mut self) -> Res<Vec<STok>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(b) = self.peek() else {
                out.push(STok {
                    tok: Tok::Eof,
                    span,
                });
                return Ok(out);
            };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b'"' => self.lex_string(span)?,
                b'-' | b'0'..=b'9' => self.lex_number(span)?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = self.i;
                    while self
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.s[start..self.i])
                        .map_err(|_| SchemaError::at(span, "invalid identifier encoding"))?;
                    Tok::Ident(text.to_string())
                }
                other => {
                    return Err(SchemaError::at(
                        span,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(STok { tok, span });
        }
    }
}

// ---------------------------------------------------------------------------
// Parser → spanned Node AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Int(i128),
    Float(f64),
    Str(String),
    Ident(String),
    List(Vec<SNode>),
    Struct {
        name: Option<String>,
        fields: Vec<(String, Span, SNode)>,
    },
    Tuple {
        name: Option<String>,
        items: Vec<SNode>,
    },
}

impl Node {
    fn describe(&self) -> &'static str {
        match self {
            Node::Int(_) => "an integer",
            Node::Float(_) => "a float",
            Node::Str(_) => "a string",
            Node::Ident(_) => "an identifier",
            Node::List(_) => "a list",
            Node::Struct { .. } => "a struct",
            Node::Tuple { .. } => "a tuple",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct SNode {
    node: Node,
    span: Span,
}

struct Parser {
    toks: Vec<STok>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &STok {
        // The token vector always ends with Eof; clamp defensively.
        let last = self.toks.len().saturating_sub(1);
        &self.toks[self.i.min(last)]
    }

    fn peek2(&self) -> &STok {
        let last = self.toks.len().saturating_sub(1);
        &self.toks[(self.i + 1).min(last)]
    }

    fn next(&mut self) -> STok {
        let t = self.peek().clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn expect_tok(&mut self, want: &Tok, what: &str) -> Res<STok> {
        let t = self.next();
        if &t.tok == want {
            Ok(t)
        } else {
            Err(SchemaError::at(
                t.span,
                format!("expected {what}, found {}", t.tok.describe()),
            ))
        }
    }

    fn parse_value(&mut self) -> Res<SNode> {
        let t = self.next();
        let span = t.span;
        let node = match t.tok {
            Tok::Int(v) => Node::Int(v),
            Tok::Float(v) => Node::Float(v),
            Tok::Str(s) => Node::Str(s),
            Tok::Ident(name) => {
                if self.peek().tok == Tok::LParen {
                    return self.parse_paren(Some(name), span);
                }
                Node::Ident(name)
            }
            Tok::LParen => {
                // Re-enter with the paren already consumed.
                self.i -= 1;
                return self.parse_paren(None, span);
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                loop {
                    if self.peek().tok == Tok::RBracket {
                        self.next();
                        break;
                    }
                    items.push(self.parse_value()?);
                    match &self.peek().tok {
                        Tok::Comma => {
                            self.next();
                        }
                        Tok::RBracket => {}
                        other => {
                            let d = other.describe();
                            return Err(SchemaError::at(
                                self.peek().span,
                                format!("expected `,` or `]` in list, found {d}"),
                            ));
                        }
                    }
                }
                Node::List(items)
            }
            other => {
                return Err(SchemaError::at(
                    span,
                    format!("expected a value, found {}", other.describe()),
                ))
            }
        };
        Ok(SNode { node, span })
    }

    /// Parses `Name( ... )` or `( ... )`: struct fields if the first
    /// token pair is `ident :`, positional tuple items otherwise.
    fn parse_paren(&mut self, name: Option<String>, span: Span) -> Res<SNode> {
        self.expect_tok(&Tok::LParen, "`(`")?;
        if self.peek().tok == Tok::RParen {
            self.next();
            return Ok(SNode {
                node: Node::Tuple {
                    name,
                    items: vec![],
                },
                span,
            });
        }
        let is_struct = matches!(self.peek().tok, Tok::Ident(_)) && self.peek2().tok == Tok::Colon;
        if is_struct {
            let mut fields: Vec<(String, Span, SNode)> = Vec::new();
            loop {
                if self.peek().tok == Tok::RParen {
                    self.next();
                    break;
                }
                let key_tok = self.next();
                let Tok::Ident(key) = key_tok.tok else {
                    return Err(SchemaError::at(
                        key_tok.span,
                        format!("expected a field name, found {}", key_tok.tok.describe()),
                    ));
                };
                if fields.iter().any(|(k, _, _)| *k == key) {
                    return Err(SchemaError::at(
                        key_tok.span,
                        format!("duplicate key `{key}`"),
                    ));
                }
                self.expect_tok(&Tok::Colon, "`:` after field name")?;
                let value = self.parse_value()?;
                fields.push((key, key_tok.span, value));
                match &self.peek().tok {
                    Tok::Comma => {
                        self.next();
                    }
                    Tok::RParen => {}
                    other => {
                        let d = other.describe();
                        return Err(SchemaError::at(
                            self.peek().span,
                            format!("expected `,` or `)` after field, found {d}"),
                        ));
                    }
                }
            }
            Ok(SNode {
                node: Node::Struct { name, fields },
                span,
            })
        } else {
            let mut items = Vec::new();
            loop {
                if self.peek().tok == Tok::RParen {
                    self.next();
                    break;
                }
                items.push(self.parse_value()?);
                match &self.peek().tok {
                    Tok::Comma => {
                        self.next();
                    }
                    Tok::RParen => {}
                    other => {
                        let d = other.describe();
                        return Err(SchemaError::at(
                            self.peek().span,
                            format!("expected `,` or `)` in tuple, found {d}"),
                        ));
                    }
                }
            }
            Ok(SNode {
                node: Node::Tuple { name, items },
                span,
            })
        }
    }
}

fn parse_root(src: &str) -> Res<SNode> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, i: 0 };
    let root = p.parse_value()?;
    let t = p.peek();
    if t.tok != Tok::Eof {
        return Err(SchemaError::at(
            t.span,
            format!("trailing content after document: {}", t.tok.describe()),
        ));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------------

struct Fields<'a> {
    name: &'a str,
    span: Span,
    entries: &'a [(String, Span, SNode)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(n: &'a SNode, want: &'a str) -> Res<Self> {
        match &n.node {
            Node::Struct {
                name: Some(name),
                fields,
            } if name == want => Ok(Self {
                name: want,
                span: n.span,
                entries: fields,
                used: vec![false; fields.len()],
            }),
            _ => Err(SchemaError::at(
                n.span,
                format!("expected `{want}(...)`, found {}", n.node.describe()),
            )),
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a SNode> {
        for (i, (k, _, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn req(&mut self, key: &str) -> Res<&'a SNode> {
        let name = self.name;
        let span = self.span;
        self.get(key).ok_or_else(|| {
            SchemaError::at(span, format!("missing required key `{key}` in `{name}`"))
        })
    }

    fn finish(self, allowed: &[&str]) -> Res<()> {
        for (i, (k, kspan, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(SchemaError::at(
                    *kspan,
                    format!(
                        "unknown key `{k}` in `{}` (expected one of: {})",
                        self.name,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

fn int_of(n: &SNode) -> Res<i128> {
    match &n.node {
        Node::Int(v) => Ok(*v),
        _ => Err(SchemaError::at(
            n.span,
            format!("expected an integer, found {}", n.node.describe()),
        )),
    }
}

fn u64_of(n: &SNode) -> Res<u64> {
    let v = int_of(n)?;
    u64::try_from(v)
        .map_err(|_| SchemaError::at(n.span, format!("integer {v} does not fit in u64")))
}

fn usize_of(n: &SNode) -> Res<usize> {
    let v = int_of(n)?;
    usize::try_from(v)
        .map_err(|_| SchemaError::at(n.span, format!("integer {v} is not a valid count")))
}

/// Accepts float or integer literals, plus the idents `NaN` and `inf`
/// (so range validation can reject them with a precise diagnostic).
fn f64_of(n: &SNode) -> Res<f64> {
    #[allow(clippy::cast_precision_loss)] // schema numbers are small
    match &n.node {
        Node::Float(v) => Ok(*v),
        Node::Int(v) => Ok(*v as f64),
        Node::Ident(s) if s == "NaN" => Ok(f64::NAN),
        Node::Ident(s) if s == "inf" => Ok(f64::INFINITY),
        _ => Err(SchemaError::at(
            n.span,
            format!("expected a number, found {}", n.node.describe()),
        )),
    }
}

/// Seconds → nanoseconds. The caller has range-checked `v` into
/// `[0, 1e6]` seconds, so the rounded product fits `u64` exactly.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn nanos(v: f64) -> u64 {
    (v * 1e9).round() as u64
}

fn checked_secs(n: &SNode, key: &str) -> Res<f64> {
    let v = f64_of(n)?;
    if !v.is_finite() || !(0.0..=1.0e6).contains(&v) {
        return Err(SchemaError::at(
            n.span,
            format!("`{key}` must be a finite number of seconds in [0, 1e6], got {v:?}"),
        ));
    }
    Ok(v)
}

fn dur_of(n: &SNode, key: &str) -> Res<SimDuration> {
    Ok(SimDuration::from_nanos(nanos(checked_secs(n, key)?)))
}

fn pos_dur_of(n: &SNode, key: &str) -> Res<SimDuration> {
    let d = dur_of(n, key)?;
    if d == SimDuration::ZERO {
        return Err(SchemaError::at(n.span, format!("`{key}` must be positive")));
    }
    Ok(d)
}

fn time_of(n: &SNode, key: &str) -> Res<SimTime> {
    Ok(SimTime::from_nanos(nanos(checked_secs(n, key)?)))
}

fn prob_of(n: &SNode, key: &str) -> Res<f64> {
    let v = f64_of(n)?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(SchemaError::at(
            n.span,
            format!("`{key}` must be a probability in [0, 1], got {v:?}"),
        ));
    }
    Ok(v)
}

fn pos_f64_of(n: &SNode, key: &str) -> Res<f64> {
    let v = f64_of(n)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(SchemaError::at(
            n.span,
            format!("`{key}` must be a positive finite number, got {v:?}"),
        ));
    }
    Ok(v)
}

fn finite_f64_of(n: &SNode, key: &str) -> Res<f64> {
    let v = f64_of(n)?;
    if !v.is_finite() {
        return Err(SchemaError::at(
            n.span,
            format!("`{key}` must be finite, got {v:?}"),
        ));
    }
    Ok(v)
}

fn list_of(n: &SNode) -> Res<&[SNode]> {
    match &n.node {
        Node::List(items) => Ok(items),
        _ => Err(SchemaError::at(
            n.span,
            format!("expected a list, found {}", n.node.describe()),
        )),
    }
}

fn opt_of(n: &SNode) -> Res<Option<&SNode>> {
    match &n.node {
        Node::Ident(s) if s == "None" => Ok(None),
        Node::Tuple {
            name: Some(nm),
            items,
        } if nm == "Some" && items.len() == 1 => Ok(Some(&items[0])),
        _ => Err(SchemaError::at(n.span, "expected `None` or `Some(...)`")),
    }
}

fn uhf_of(n: &SNode) -> Res<UhfChannel> {
    let idx = usize_of(n)?;
    UhfChannel::new(idx).ok_or_else(|| {
        SchemaError::at(
            n.span,
            format!("channel index {idx} out of band (0..{NUM_UHF_CHANNELS})"),
        )
    })
}

fn wf_of(n: &SNode) -> Res<WfChannel> {
    let Node::Tuple {
        name: Some(name),
        items,
    } = &n.node
    else {
        return Err(SchemaError::at(
            n.span,
            "expected a channel like `W20(7)` (width + centre index)",
        ));
    };
    let width = match name.as_str() {
        "W5" => Width::W5,
        "W10" => Width::W10,
        "W20" => Width::W20,
        other => {
            return Err(SchemaError::at(
                n.span,
                format!("unknown channel width `{other}` (expected W5, W10 or W20)"),
            ))
        }
    };
    let [item] = &items[..] else {
        return Err(SchemaError::at(
            n.span,
            "a channel takes exactly one centre index, e.g. `W20(7)`",
        ));
    };
    let center = uhf_of(item)?;
    WfChannel::new(center, width).ok_or_else(|| {
        SchemaError::at(
            n.span,
            format!(
                "channel {name}({}) does not fit inside the UHF band",
                center.index()
            ),
        )
    })
}

// ---------------------------------------------------------------------------
// Typed documents
// ---------------------------------------------------------------------------

/// A parsed scenario document of any kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioDoc {
    /// `Scenario(...)`: one AP, its clients, and the band.
    SingleAp(SingleApDoc),
    /// `City(...)`: a multi-AP grid sharing one band.
    City(CityDoc),
    /// `LocaleContrast(...)`: the rural-vs-urban program.
    LocaleContrast(LocaleContrastDoc),
    /// `DiscoverySweep(...)`: the Figure 8 discovery race.
    DiscoverySweep(DiscoverySweepDoc),
    /// `Roadtrip(...)`: the geo-database mobility route.
    Roadtrip(RoadtripDoc),
}

/// The spectrum map, as written in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapSpec {
    /// `Free([..])`: the listed UHF indices are free, the rest occupied.
    Free(Vec<usize>),
    /// `Occupied([..])`: the listed indices are occupied, the rest free.
    Occupied(Vec<usize>),
}

impl MapSpec {
    /// Builds the [`SpectrumMap`].
    pub fn build(&self) -> SpectrumMap {
        match self {
            MapSpec::Free(idx) => SpectrumMap::from_free(idx.iter().copied()),
            MapSpec::Occupied(idx) => SpectrumMap::from_occupied(idx.iter().copied()),
        }
    }
}

/// Which nodes observe a mic strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicAt {
    /// Only the AP's incumbent set.
    Ap,
    /// Only the given client's incumbent set.
    Client(usize),
    /// The AP and every client.
    Everyone,
}

/// One scripted wireless-mic strike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicStrike {
    /// Struck UHF channel (must be free in the map).
    pub channel: UhfChannel,
    /// Mic switch-on time.
    pub on: SimTime,
    /// Mic switch-off time (must be after `on`).
    pub off: SimTime,
    /// Audience.
    pub at: MicAt,
}

/// Where a sampled process takes its seed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSource {
    /// Reuse the document's `seed` (so a seed override retargets both).
    Scenario,
    /// An independent fixed seed.
    Fixed(u64),
}

/// A randomized mic population: every free channel hosts a mic with
/// probability `prob`, with exponential on/off bursts (the
/// `examples/campus_day.rs` §2.3 process, reproduced draw-for-draw).
#[derive(Debug, Clone, PartialEq)]
pub struct MicStorm {
    /// Per-free-channel probability of hosting a mic.
    pub prob: f64,
    /// Mean off-time of each mic burst process (seconds).
    pub mean_off_s: f64,
    /// Mean on-time (seconds).
    pub mean_on_s: f64,
    /// Schedule horizon.
    pub horizon: SimDuration,
    /// RNG seed source.
    pub seed: SeedSource,
}

/// Background traffic shape of one pair.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Constant bit rate.
    Cbr {
        /// Inter-packet delay.
        interval: SimDuration,
    },
    /// Two-state Markov churn (arrival/departure of contending load).
    Markov {
        /// CBR interval while active.
        interval: SimDuration,
        /// Mean active dwell.
        mean_active: SimDuration,
        /// Mean passive dwell.
        mean_passive: SimDuration,
    },
    /// CBR only inside explicit windows.
    Scripted {
        /// CBR interval while a window is open.
        interval: SimDuration,
        /// Open windows.
        windows: Vec<(SimTime, SimTime)>,
    },
    /// Periodic on/off windows over the whole run — a diurnal load mix
    /// compiled down to [`BackgroundTraffic::Scripted`].
    Diurnal {
        /// CBR interval while on.
        interval: SimDuration,
        /// On-phase length.
        on: SimDuration,
        /// Off-phase length.
        off: SimDuration,
        /// Offset of the first on-phase.
        phase: SimDuration,
    },
}

impl TrafficSpec {
    /// Lowers to the engine's [`BackgroundTraffic`]. `horizon` bounds
    /// the generated diurnal windows (warmup + duration).
    pub fn compile(&self, horizon: SimDuration) -> BackgroundTraffic {
        match self {
            TrafficSpec::Cbr { interval } => BackgroundTraffic::Cbr {
                interval: *interval,
            },
            TrafficSpec::Markov {
                interval,
                mean_active,
                mean_passive,
            } => BackgroundTraffic::Markov {
                interval: *interval,
                mean_active: *mean_active,
                mean_passive: *mean_passive,
            },
            TrafficSpec::Scripted { interval, windows } => BackgroundTraffic::Scripted {
                interval: *interval,
                windows: windows.clone(),
            },
            TrafficSpec::Diurnal {
                interval,
                on,
                off,
                phase,
            } => {
                let mut windows = Vec::new();
                let mut t = SimTime::ZERO + *phase;
                let end = SimTime::ZERO + horizon;
                while t < end {
                    windows.push((t, t + *on));
                    t = t + *on + *off;
                }
                BackgroundTraffic::Scripted {
                    interval: *interval,
                    windows,
                }
            }
        }
    }
}

/// One background pair: a channel and its load shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BgSpec {
    /// The pair's fixed channel (must be admitted by the map).
    pub channel: WfChannel,
    /// Load shape.
    pub traffic: TrafficSpec,
}

/// How to run a compiled single-AP scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSpec {
    /// The adaptive WhiteFi protocol, optionally pinned to an initial
    /// channel.
    Whitefi {
        /// Initial channel (must be admitted by the map).
        initial: Option<WfChannel>,
    },
    /// A static network pinned to one channel for the whole run.
    Fixed {
        /// The pinned channel.
        channel: WfChannel,
    },
}

/// A `Scenario(...)` document.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleApDoc {
    /// Simulation seed (every per-node stream derives from it).
    pub seed: u64,
    /// The band.
    pub map: MapSpec,
    /// Client count.
    pub clients: usize,
    /// Warmup before measurement.
    pub warmup: SimDuration,
    /// Measured duration.
    pub duration: SimDuration,
    /// Timeline sample interval.
    pub sample_interval: SimDuration,
    /// Downlink payload bytes per frame.
    pub downlink_bytes: usize,
    /// Uplink payload bytes per frame (`None` disables uplink).
    pub uplink_bytes: Option<usize>,
    /// Scripted mic strikes.
    pub mics: Vec<MicStrike>,
    /// Optional sampled mic population.
    pub mic_storm: Option<MicStorm>,
    /// Background pairs.
    pub background: Vec<BgSpec>,
    /// Optional fault plan.
    pub faults: Option<FaultPlan>,
    /// Run mode.
    pub run: RunSpec,
    /// Optional pinned-channel contrast run (e.g. campus_day's static
    /// 20 MHz comparison).
    pub contrast_fixed: Option<WfChannel>,
}

/// City topology constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSpec {
    /// [`CityScenario::grid`]: seeded locale mix on a square grid.
    Grid {
        /// AP count.
        aps: usize,
        /// Clients per AP.
        clients_per_ap: usize,
        /// Grid spacing (metres).
        spacing_m: f64,
        /// Radio range (metres).
        range_m: f64,
    },
    /// [`CityScenario::checkerboard`]: the dense-urban parity maps.
    Checkerboard {
        /// AP count.
        aps: usize,
        /// Clients per AP.
        clients_per_ap: usize,
    },
}

/// Per-cell strike override.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOverride {
    /// Cell index.
    pub cell: usize,
    /// Strikes observed by the whole cell.
    pub mics: Vec<MicStrike>,
}

/// Shard partition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Influence-closed components only.
    Components,
    /// Balanced graph cut with the certified-silent boundary protocol.
    Cut,
}

impl PartitionSpec {
    /// The engine-side partition enum.
    pub fn to_engine(self) -> CityPartition {
        match self {
            PartitionSpec::Components => CityPartition::Components,
            PartitionSpec::Cut => CityPartition::Cut,
        }
    }
}

/// A `City(...)` document.
#[derive(Debug, Clone, PartialEq)]
pub struct CityDoc {
    /// City seed.
    pub seed: u64,
    /// Topology constructor.
    pub grid: GridSpec,
    /// Warmup before measurement.
    pub warmup: SimDuration,
    /// Measured duration.
    pub duration: SimDuration,
    /// Timeline sample interval.
    pub sample_interval: SimDuration,
    /// Cross-shard sync window.
    pub sync_window: SimDuration,
    /// Downlink payload bytes per frame.
    pub downlink_bytes: usize,
    /// Uplink payload bytes (`None` disables uplink).
    pub uplink_bytes: Option<usize>,
    /// Per-cell strike overrides.
    pub overrides: Vec<CellOverride>,
    /// Optional fault plan.
    pub faults: Option<FaultPlan>,
    /// Shard count for the parallel run.
    pub shards: usize,
    /// Partition strategy.
    pub partition: PartitionSpec,
}

/// A `LocaleContrast(...)` document (`examples/rural_broadband.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocaleContrastDoc {
    /// Program seed: locale sampling, per-class scenario seeds and
    /// discovery placements all derive from it.
    pub seed: u64,
    /// Locale classes, visited in order with one shared RNG.
    pub classes: Vec<LocaleClass>,
    /// Clients per phase network.
    pub clients: usize,
    /// Warmup per phase.
    pub warmup: SimDuration,
    /// Duration per phase.
    pub duration: SimDuration,
    /// Discovery trials per phase.
    pub discovery_trials: u64,
}

/// A `DiscoverySweep(...)` document (`examples/discovery_race.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoverySweepDoc {
    /// Random placements per width.
    pub trials: usize,
    /// First fragment width (≥ 1).
    pub min_width: usize,
    /// Last fragment width (≤ 30).
    pub max_width: usize,
}

/// One registered TV station.
#[derive(Debug, Clone, PartialEq)]
pub struct StationSpec {
    /// Station channel.
    pub channel: UhfChannel,
    /// Site x (km).
    pub x_km: f64,
    /// Site y (km).
    pub y_km: f64,
    /// Effective radiated power (kW).
    pub erp_kw: f64,
}

/// The drive route: `steps + 1` queries along the x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSpec {
    /// Number of steps (route has `steps + 1` points).
    pub steps: usize,
    /// Distance per step (km).
    pub step_km: f64,
}

/// A `Roadtrip(...)` document (`examples/roadtrip.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoadtripDoc {
    /// Registered stations.
    pub stations: Vec<StationSpec>,
    /// The route.
    pub route: RouteSpec,
}

impl ScenarioDoc {
    /// Overrides the document's primary seed (for `[seed]` CLI args).
    /// Program kinds without a seed (`DiscoverySweep`, `Roadtrip`) are
    /// returned unchanged.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        match &mut self {
            ScenarioDoc::SingleAp(d) => d.seed = seed,
            ScenarioDoc::City(d) => d.seed = seed,
            ScenarioDoc::LocaleContrast(d) => d.seed = seed,
            ScenarioDoc::DiscoverySweep(_) | ScenarioDoc::Roadtrip(_) => {}
        }
        self
    }

    /// Compiles simulation documents to a runnable case. Program
    /// documents (`LocaleContrast`, `DiscoverySweep`, `Roadtrip`) have
    /// their own interpreters and return `None`.
    pub fn compile_sim(&self) -> Option<CompiledCase> {
        match self {
            ScenarioDoc::SingleAp(d) => Some(CompiledCase::SingleAp(Box::new(d.compile()))),
            ScenarioDoc::City(d) => Some(CompiledCase::City(Box::new(d.compile()))),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// A compiled single-AP case: the engine [`Scenario`] plus run mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSingleAp {
    /// The engine scenario, byte-identical to the hand-coded build.
    pub scenario: Scenario,
    /// Run mode.
    pub run: RunSpec,
    /// Optional pinned contrast channel.
    pub contrast_fixed: Option<WfChannel>,
}

impl CompiledSingleAp {
    /// The initial channel handed to [`run_whitefi`] (None for fixed
    /// runs, which pin their own channel).
    pub fn initial(&self) -> Option<WfChannel> {
        match self.run {
            RunSpec::Whitefi { initial } => initial,
            RunSpec::Fixed { .. } => None,
        }
    }

    /// Runs the case per its [`RunSpec`].
    pub fn run(&self) -> ScenarioOutcome {
        match self.run {
            RunSpec::Whitefi { initial } => run_whitefi(&self.scenario, initial),
            RunSpec::Fixed { channel } => run_fixed(&self.scenario, channel),
        }
    }
}

impl SingleApDoc {
    /// Horizon of the run (warmup + duration) — bounds diurnal windows.
    pub fn horizon(&self) -> SimDuration {
        self.warmup + self.duration
    }

    /// Compiles to the engine [`Scenario`]. Infallible: every
    /// cross-field constraint was validated at decode time.
    pub fn compile(&self) -> CompiledSingleAp {
        let map = self.map.build();
        let mut s = Scenario::new(self.seed, map, self.clients);
        s.warmup = self.warmup;
        s.duration = self.duration;
        s.sample_interval = self.sample_interval;
        s.downlink_bytes = self.downlink_bytes;
        s.uplink_bytes = self.uplink_bytes;

        let mut ap_set = IncumbentSet::default();
        let mut ap_used = false;
        let mut client_sets: Vec<(IncumbentSet, bool)> =
            vec![(IncumbentSet::default(), false); self.clients];

        if let Some(storm) = &self.mic_storm {
            // Draw-for-draw the campus_day process: one ChaCha8 stream,
            // `gen_bool` then `MicSchedule::sample` per free channel.
            let storm_seed = match storm.seed {
                SeedSource::Scenario => self.seed,
                SeedSource::Fixed(x) => x,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(storm_seed);
            let mut sampled = IncumbentSet::default();
            for ch in map.free_channels() {
                if rng.gen_bool(storm.prob) {
                    let schedule = MicSchedule::sample(
                        &mut rng,
                        storm.horizon.as_nanos(),
                        storm.mean_off_s,
                        storm.mean_on_s,
                    );
                    sampled.mics.push(WirelessMic::new(ch, schedule));
                }
            }
            ap_set.mics.extend(sampled.mics.iter().cloned());
            ap_used = true;
            for (set, used) in &mut client_sets {
                set.mics.extend(sampled.mics.iter().cloned());
                *used = true;
            }
        }

        for strike in &self.mics {
            let mic = WirelessMic::new(
                strike.channel,
                MicSchedule::scripted(vec![MicActivity {
                    start: strike.on.as_nanos(),
                    end: strike.off.as_nanos(),
                }]),
            );
            match strike.at {
                MicAt::Ap => {
                    ap_set.mics.push(mic);
                    ap_used = true;
                }
                MicAt::Client(i) => {
                    if let Some((set, used)) = client_sets.get_mut(i) {
                        set.mics.push(mic);
                        *used = true;
                    }
                }
                MicAt::Everyone => {
                    ap_set.mics.push(mic.clone());
                    ap_used = true;
                    for (set, used) in &mut client_sets {
                        set.mics.push(mic.clone());
                        *used = true;
                    }
                }
            }
        }

        s.ap_extra_incumbents = ap_used.then_some(ap_set);
        s.client_extra_incumbents = client_sets
            .into_iter()
            .map(|(set, used)| used.then_some(set))
            .collect();

        let horizon = self.horizon();
        s.background = self
            .background
            .iter()
            .map(|b| BackgroundPair {
                channel: b.channel,
                traffic: b.traffic.compile(horizon),
            })
            .collect();
        s.faults = self.faults.clone();

        CompiledSingleAp {
            scenario: s,
            run: self.run,
            contrast_fixed: self.contrast_fixed,
        }
    }
}

/// A compiled city case: the engine [`CityScenario`] plus shard plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCity {
    /// The engine city, byte-identical to the hand-coded build.
    pub city: CityScenario,
    /// Shard count.
    pub shards: usize,
    /// Partition strategy.
    pub partition: PartitionSpec,
}

impl CompiledCity {
    /// Runs the city with the document's shard plan.
    pub fn run(&self) -> (CityOutcome, CityRunStats) {
        run_city_with(&self.city, self.shards, self.partition.to_engine())
    }
}

impl CityDoc {
    /// Builds the base city (topology only — no overrides applied).
    pub fn base_city(&self) -> CityScenario {
        match self.grid {
            GridSpec::Grid {
                aps,
                clients_per_ap,
                spacing_m,
                range_m,
            } => CityScenario::grid(self.seed, aps, clients_per_ap, spacing_m, range_m),
            GridSpec::Checkerboard {
                aps,
                clients_per_ap,
            } => CityScenario::checkerboard(self.seed, aps, clients_per_ap),
        }
    }

    /// Compiles to the engine [`CityScenario`]. Infallible: every
    /// cross-field constraint was validated at decode time.
    pub fn compile(&self) -> CompiledCity {
        let mut city = self.base_city();
        city.warmup = self.warmup;
        city.duration = self.duration;
        city.sample_interval = self.sample_interval;
        city.sync_window = self.sync_window;
        city.downlink_bytes = self.downlink_bytes;
        city.uplink_bytes = self.uplink_bytes;
        for o in &self.overrides {
            let mut set = IncumbentSet::default();
            for strike in &o.mics {
                set.mics.push(WirelessMic::new(
                    strike.channel,
                    MicSchedule::scripted(vec![MicActivity {
                        start: strike.on.as_nanos(),
                        end: strike.off.as_nanos(),
                    }]),
                ));
            }
            if let Some(cell) = city.cells.get_mut(o.cell) {
                cell.extra_incumbents = Some(set);
            }
        }
        city.faults = self.faults.clone();
        CompiledCity {
            city,
            shards: self.shards,
            partition: self.partition,
        }
    }
}

/// A compiled simulation case of either kind.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledCase {
    /// Single-AP case.
    SingleAp(Box<CompiledSingleAp>),
    /// City case.
    City(Box<CompiledCity>),
}

/// The outcome of running a [`CompiledCase`].
#[derive(Debug, Clone, PartialEq)]
pub enum CaseOutcome {
    /// Single-AP outcome.
    SingleAp(ScenarioOutcome),
    /// City outcome.
    City(CityOutcome),
}

impl CompiledCase {
    /// Runs the case (city stats are dropped; use [`CompiledCity::run`]
    /// directly when they matter).
    pub fn run(&self) -> CaseOutcome {
        match self {
            CompiledCase::SingleAp(c) => CaseOutcome::SingleAp(c.run()),
            CompiledCase::City(c) => CaseOutcome::City(c.run().0),
        }
    }
}

impl CaseOutcome {
    /// Engine compliance meter (transmissions over a live incumbent).
    pub fn violations(&self) -> u64 {
        match self {
            CaseOutcome::SingleAp(o) => o.violations,
            CaseOutcome::City(o) => o.violations(),
        }
    }

    /// Total oracle-bank violations.
    pub fn oracle_violation_count(&self) -> usize {
        match self {
            CaseOutcome::SingleAp(o) => o.oracle.violations.len(),
            CaseOutcome::City(o) => o.oracle_violations(),
        }
    }

    /// Member transmissions the oracle bank checked.
    pub fn checked_tx(&self) -> u64 {
        match self {
            CaseOutcome::SingleAp(o) => o.oracle.checked_tx,
            CaseOutcome::City(o) => o.cells.iter().map(|c| c.oracle.checked_tx).sum(),
        }
    }

    /// Aggregate goodput in Mbps.
    pub fn aggregate_mbps(&self) -> f64 {
        match self {
            CaseOutcome::SingleAp(o) => o.aggregate_mbps,
            CaseOutcome::City(o) => o.aggregate_mbps,
        }
    }
}

// ---------------------------------------------------------------------------
// Document decoding
// ---------------------------------------------------------------------------

/// The schema version this build reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

fn check_version(f: &mut Fields) -> Res<()> {
    let n = f.req("version")?;
    let v = u64_of(n)?;
    if v != SCHEMA_VERSION {
        return Err(SchemaError::at(
            n.span,
            format!("unsupported schema version {v} (this build reads version {SCHEMA_VERSION})"),
        ));
    }
    Ok(())
}

fn channel_index_of(n: &SNode) -> Res<usize> {
    let idx = usize_of(n)?;
    if idx >= NUM_UHF_CHANNELS {
        return Err(SchemaError::at(
            n.span,
            format!("channel index {idx} out of band (0..{NUM_UHF_CHANNELS})"),
        ));
    }
    Ok(idx)
}

fn map_spec_of(n: &SNode) -> Res<MapSpec> {
    let Node::Tuple {
        name: Some(name),
        items,
    } = &n.node
    else {
        return Err(SchemaError::at(
            n.span,
            "expected `Free([..])` or `Occupied([..])`",
        ));
    };
    let [inner] = &items[..] else {
        return Err(SchemaError::at(
            n.span,
            format!("`{name}` takes exactly one list of channel indices"),
        ));
    };
    let idx = list_of(inner)?
        .iter()
        .map(channel_index_of)
        .collect::<Res<Vec<usize>>>()?;
    let spec = match name.as_str() {
        "Free" => MapSpec::Free(idx),
        "Occupied" => MapSpec::Occupied(idx),
        other => {
            return Err(SchemaError::at(
                n.span,
                format!("unknown map constructor `{other}` (expected Free or Occupied)"),
            ))
        }
    };
    if spec.build().free_count() == 0 {
        return Err(SchemaError::at(n.span, "map has no free channels"));
    }
    Ok(spec)
}

fn mic_at_of(n: &SNode, clients: usize) -> Res<MicAt> {
    match &n.node {
        Node::Ident(s) if s == "Ap" => Ok(MicAt::Ap),
        Node::Ident(s) if s == "Everyone" => Ok(MicAt::Everyone),
        Node::Tuple {
            name: Some(nm),
            items,
        } if nm == "Client" => {
            let [item] = &items[..] else {
                return Err(SchemaError::at(
                    n.span,
                    "`Client` takes exactly one client index",
                ));
            };
            let i = usize_of(item)?;
            if i >= clients {
                return Err(SchemaError::at(
                    item.span,
                    format!("client index {i} out of range (the scenario has {clients} clients)"),
                ));
            }
            Ok(MicAt::Client(i))
        }
        _ => Err(SchemaError::at(
            n.span,
            "expected `Ap`, `Everyone` or `Client(i)`",
        )),
    }
}

/// Decodes one `Strike(...)`. `clients` is `Some(n)` for single-AP
/// documents (where `at:` selects the audience) and `None` for city
/// overrides (where the whole cell hears every strike).
fn strike_of(n: &SNode, map: SpectrumMap, clients: Option<usize>) -> Res<(MicStrike, Span)> {
    let mut f = Fields::new(n, "Strike")?;
    let ch_node = f.req("channel")?;
    let channel = uhf_of(ch_node)?;
    if !map.is_free(channel) {
        return Err(SchemaError::at(
            ch_node.span,
            format!(
                "mic strike channel {} is not free in the map",
                channel.index()
            ),
        ));
    }
    let on = time_of(f.req("on_s")?, "on_s")?;
    let off_node = f.req("off_s")?;
    let off = time_of(off_node, "off_s")?;
    if off <= on {
        return Err(SchemaError::at(
            off_node.span,
            "`off_s` must be after `on_s`",
        ));
    }
    let at = if let Some(clients) = clients {
        match f.get("at") {
            Some(v) => mic_at_of(v, clients)?,
            None => MicAt::Everyone,
        }
    } else {
        MicAt::Everyone
    };
    let allowed: &[&str] = if clients.is_some() {
        &["channel", "on_s", "off_s", "at"]
    } else {
        &["channel", "on_s", "off_s"]
    };
    f.finish(allowed)?;
    Ok((
        MicStrike {
            channel,
            on,
            off,
            at,
        },
        n.span,
    ))
}

fn audiences_intersect(a: MicAt, b: MicAt) -> bool {
    match (a, b) {
        (MicAt::Everyone, _) | (_, MicAt::Everyone) => true,
        (MicAt::Ap, MicAt::Ap) => true,
        (MicAt::Client(i), MicAt::Client(j)) => i == j,
        _ => false,
    }
}

/// Rejects strike pairs that overlap in time on the same channel with
/// an intersecting audience — such schedules are ambiguous to merge
/// into one scripted activity list.
fn check_strike_overlap(strikes: &[(MicStrike, Span)]) -> Res<()> {
    for (i, (a, _)) in strikes.iter().enumerate() {
        for (b, bspan) in strikes.iter().skip(i + 1) {
            if a.channel == b.channel
                && audiences_intersect(a.at, b.at)
                && a.on < b.off
                && b.on < a.off
            {
                return Err(SchemaError::at(
                    *bspan,
                    format!("overlapping mic strikes on channel {}", a.channel.index()),
                ));
            }
        }
    }
    Ok(())
}

fn strike_list_of(n: &SNode, map: SpectrumMap, clients: Option<usize>) -> Res<Vec<MicStrike>> {
    let strikes = list_of(n)?
        .iter()
        .map(|s| strike_of(s, map, clients))
        .collect::<Res<Vec<_>>>()?;
    check_strike_overlap(&strikes)?;
    Ok(strikes.into_iter().map(|(s, _)| s).collect())
}

fn window_of(n: &SNode) -> Res<(SimTime, SimTime)> {
    let Node::Tuple { name: None, items } = &n.node else {
        return Err(SchemaError::at(
            n.span,
            "expected a `(on_s, off_s)` window pair",
        ));
    };
    let [on_n, off_n] = &items[..] else {
        return Err(SchemaError::at(
            n.span,
            "a window takes exactly two times: `(on_s, off_s)`",
        ));
    };
    let on = time_of(on_n, "on_s")?;
    let off = time_of(off_n, "off_s")?;
    if off <= on {
        return Err(SchemaError::at(
            off_n.span,
            "window end must be after its start",
        ));
    }
    Ok((on, off))
}

fn traffic_of(n: &SNode) -> Res<TrafficSpec> {
    let Node::Struct {
        name: Some(name), ..
    } = &n.node
    else {
        return Err(SchemaError::at(
            n.span,
            "expected a traffic shape: `Cbr(...)`, `Markov(...)`, `Scripted(...)` or `Diurnal(...)`",
        ));
    };
    match name.as_str() {
        "Cbr" => {
            let mut f = Fields::new(n, "Cbr")?;
            let interval = pos_dur_of(f.req("interval_s")?, "interval_s")?;
            f.finish(&["interval_s"])?;
            Ok(TrafficSpec::Cbr { interval })
        }
        "Markov" => {
            let mut f = Fields::new(n, "Markov")?;
            let interval = pos_dur_of(f.req("interval_s")?, "interval_s")?;
            let mean_active = pos_dur_of(f.req("mean_active_s")?, "mean_active_s")?;
            let mean_passive = pos_dur_of(f.req("mean_passive_s")?, "mean_passive_s")?;
            f.finish(&["interval_s", "mean_active_s", "mean_passive_s"])?;
            Ok(TrafficSpec::Markov {
                interval,
                mean_active,
                mean_passive,
            })
        }
        "Scripted" => {
            let mut f = Fields::new(n, "Scripted")?;
            let interval = pos_dur_of(f.req("interval_s")?, "interval_s")?;
            let windows = list_of(f.req("windows")?)?
                .iter()
                .map(window_of)
                .collect::<Res<Vec<_>>>()?;
            f.finish(&["interval_s", "windows"])?;
            Ok(TrafficSpec::Scripted { interval, windows })
        }
        "Diurnal" => {
            let mut f = Fields::new(n, "Diurnal")?;
            let interval = pos_dur_of(f.req("interval_s")?, "interval_s")?;
            let on = pos_dur_of(f.req("on_s")?, "on_s")?;
            let off = dur_of(f.req("off_s")?, "off_s")?;
            let phase = match f.get("phase_s") {
                Some(v) => dur_of(v, "phase_s")?,
                None => SimDuration::ZERO,
            };
            f.finish(&["interval_s", "on_s", "off_s", "phase_s"])?;
            Ok(TrafficSpec::Diurnal {
                interval,
                on,
                off,
                phase,
            })
        }
        other => Err(SchemaError::at(
            n.span,
            format!("unknown traffic shape `{other}` (expected Cbr, Markov, Scripted or Diurnal)"),
        )),
    }
}

fn bg_of(n: &SNode, map: SpectrumMap) -> Res<BgSpec> {
    let mut f = Fields::new(n, "Background")?;
    let ch_node = f.req("channel")?;
    let channel = wf_of(ch_node)?;
    if !map.available_channels().contains(&channel) {
        return Err(SchemaError::at(
            ch_node.span,
            format!("background channel {channel} is not admitted by the map"),
        ));
    }
    let traffic = traffic_of(f.req("traffic")?)?;
    f.finish(&["channel", "traffic"])?;
    Ok(BgSpec { channel, traffic })
}

fn seed_source_of(n: &SNode) -> Res<SeedSource> {
    match &n.node {
        Node::Ident(s) if s == "Scenario" => Ok(SeedSource::Scenario),
        Node::Tuple {
            name: Some(nm),
            items,
        } if nm == "Fixed" => {
            let [item] = &items[..] else {
                return Err(SchemaError::at(n.span, "`Fixed` takes exactly one seed"));
            };
            Ok(SeedSource::Fixed(u64_of(item)?))
        }
        _ => Err(SchemaError::at(
            n.span,
            "expected `Scenario` or `Fixed(seed)`",
        )),
    }
}

fn storm_of(n: &SNode) -> Res<MicStorm> {
    let mut f = Fields::new(n, "Storm")?;
    let prob = prob_of(f.req("prob")?, "prob")?;
    let mean_off_s = pos_f64_of(f.req("mean_off_s")?, "mean_off_s")?;
    let mean_on_s = pos_f64_of(f.req("mean_on_s")?, "mean_on_s")?;
    let horizon = pos_dur_of(f.req("horizon_s")?, "horizon_s")?;
    let seed = match f.get("seed") {
        Some(v) => seed_source_of(v)?,
        None => SeedSource::Scenario,
    };
    f.finish(&["prob", "mean_off_s", "mean_on_s", "horizon_s", "seed"])?;
    Ok(MicStorm {
        prob,
        mean_off_s,
        mean_on_s,
        horizon,
        seed,
    })
}

fn faults_of(n: &SNode) -> Res<FaultPlan> {
    let mut f = Fields::new(n, "Faults")?;
    let seed = u64_of(f.req("seed")?)?;
    let prob = |f: &mut Fields, key| -> Res<f64> {
        match f.get(key) {
            Some(v) => prob_of(v, key),
            None => Ok(0.0),
        }
    };
    let drop_prob = prob(&mut f, "drop_prob")?;
    let dup_prob = prob(&mut f, "dup_prob")?;
    let delay_prob = prob(&mut f, "delay_prob")?;
    let max_delay = match f.get("max_delay_s") {
        Some(v) => dur_of(v, "max_delay_s")?,
        None => SimDuration::ZERO,
    };
    let max_detection_extra = match f.get("max_detection_extra_s") {
        Some(v) => dur_of(v, "max_detection_extra_s")?,
        None => SimDuration::ZERO,
    };
    let history_skew = match f.get("history_skew_s") {
        Some(v) => match opt_of(v)? {
            Some(inner) => Some(pos_dur_of(inner, "history_skew_s")?),
            None => None,
        },
        None => None,
    };
    f.finish(&[
        "seed",
        "drop_prob",
        "dup_prob",
        "delay_prob",
        "max_delay_s",
        "max_detection_extra_s",
        "history_skew_s",
    ])?;
    Ok(FaultPlan {
        seed,
        drop_prob,
        dup_prob,
        delay_prob,
        max_delay,
        max_detection_extra,
        history_skew,
    })
}

fn admitted_wf_of(n: &SNode, map: SpectrumMap, what: &str) -> Res<WfChannel> {
    let ch = wf_of(n)?;
    if !map.available_channels().contains(&ch) {
        return Err(SchemaError::at(
            n.span,
            format!("{what} {ch} is not admitted by the map"),
        ));
    }
    Ok(ch)
}

fn run_of(n: &SNode, map: SpectrumMap) -> Res<RunSpec> {
    match &n.node {
        Node::Ident(s) if s == "Whitefi" => Ok(RunSpec::Whitefi { initial: None }),
        Node::Struct { name: Some(nm), .. } if nm == "Whitefi" => {
            let mut f = Fields::new(n, "Whitefi")?;
            let initial = match f.get("initial") {
                Some(v) => match opt_of(v)? {
                    Some(inner) => Some(admitted_wf_of(inner, map, "initial channel")?),
                    None => None,
                },
                None => None,
            };
            f.finish(&["initial"])?;
            Ok(RunSpec::Whitefi { initial })
        }
        Node::Struct { name: Some(nm), .. } if nm == "Fixed" => {
            let mut f = Fields::new(n, "Fixed")?;
            let channel = admitted_wf_of(f.req("channel")?, map, "fixed channel")?;
            f.finish(&["channel"])?;
            Ok(RunSpec::Fixed { channel })
        }
        _ => Err(SchemaError::at(
            n.span,
            "expected `Whitefi`, `Whitefi(initial: ...)` or `Fixed(channel: ...)`",
        )),
    }
}

fn opt_usize_of(n: &SNode, key: &str) -> Res<Option<usize>> {
    match opt_of(n)? {
        Some(inner) => {
            let v = usize_of(inner)?;
            if v == 0 {
                return Err(SchemaError::at(
                    inner.span,
                    format!("`{key}` payload must be positive (use None to disable)"),
                ));
            }
            Ok(Some(v))
        }
        None => Ok(None),
    }
}

fn decode_single(n: &SNode) -> Res<SingleApDoc> {
    let mut f = Fields::new(n, "Scenario")?;
    check_version(&mut f)?;
    let seed = u64_of(f.req("seed")?)?;
    let map = map_spec_of(f.req("map")?)?;
    let built = map.build();
    let clients_node = f.req("clients")?;
    let clients = usize_of(clients_node)?;
    if clients == 0 {
        return Err(SchemaError::at(
            clients_node.span,
            "`clients` must be at least 1",
        ));
    }
    let warmup = dur_of(f.req("warmup_s")?, "warmup_s")?;
    let duration = pos_dur_of(f.req("duration_s")?, "duration_s")?;
    let sample_interval = pos_dur_of(f.req("sample_interval_s")?, "sample_interval_s")?;
    let downlink_bytes = match f.get("downlink_bytes") {
        Some(v) => {
            let b = usize_of(v)?;
            if b == 0 {
                return Err(SchemaError::at(v.span, "`downlink_bytes` must be positive"));
            }
            b
        }
        None => 1000,
    };
    let uplink_bytes = match f.get("uplink_bytes") {
        Some(v) => opt_usize_of(v, "uplink_bytes")?,
        None => Some(500),
    };
    let mics = match f.get("mics") {
        Some(v) => strike_list_of(v, built, Some(clients))?,
        None => Vec::new(),
    };
    let mic_storm = match f.get("mic_storm") {
        Some(v) => Some(storm_of(v)?),
        None => None,
    };
    let background = match f.get("background") {
        Some(v) => list_of(v)?
            .iter()
            .map(|b| bg_of(b, built))
            .collect::<Res<Vec<_>>>()?,
        None => Vec::new(),
    };
    let faults = match f.get("faults") {
        Some(v) => Some(faults_of(v)?),
        None => None,
    };
    let run = match f.get("run") {
        Some(v) => run_of(v, built)?,
        None => RunSpec::Whitefi { initial: None },
    };
    let contrast_fixed = match f.get("contrast_fixed") {
        Some(v) => Some(admitted_wf_of(v, built, "contrast channel")?),
        None => None,
    };
    f.finish(&[
        "version",
        "seed",
        "map",
        "clients",
        "warmup_s",
        "duration_s",
        "sample_interval_s",
        "downlink_bytes",
        "uplink_bytes",
        "mics",
        "mic_storm",
        "background",
        "faults",
        "run",
        "contrast_fixed",
    ])?;
    Ok(SingleApDoc {
        seed,
        map,
        clients,
        warmup,
        duration,
        sample_interval,
        downlink_bytes,
        uplink_bytes,
        mics,
        mic_storm,
        background,
        faults,
        run,
        contrast_fixed,
    })
}

fn grid_of(n: &SNode) -> Res<GridSpec> {
    let Node::Struct {
        name: Some(name), ..
    } = &n.node
    else {
        return Err(SchemaError::at(
            n.span,
            "expected `Grid(...)` or `Checkerboard(...)`",
        ));
    };
    let count = |f: &mut Fields, key| -> Res<usize> {
        let v = f.req(key)?;
        let c = usize_of(v)?;
        if c == 0 {
            return Err(SchemaError::at(
                v.span,
                format!("`{key}` must be at least 1"),
            ));
        }
        Ok(c)
    };
    match name.as_str() {
        "Grid" => {
            let mut f = Fields::new(n, "Grid")?;
            let aps = count(&mut f, "aps")?;
            let clients_per_ap = count(&mut f, "clients_per_ap")?;
            let spacing_m = pos_f64_of(f.req("spacing_m")?, "spacing_m")?;
            let range_m = pos_f64_of(f.req("range_m")?, "range_m")?;
            f.finish(&["aps", "clients_per_ap", "spacing_m", "range_m"])?;
            Ok(GridSpec::Grid {
                aps,
                clients_per_ap,
                spacing_m,
                range_m,
            })
        }
        "Checkerboard" => {
            let mut f = Fields::new(n, "Checkerboard")?;
            let aps = count(&mut f, "aps")?;
            let clients_per_ap = count(&mut f, "clients_per_ap")?;
            f.finish(&["aps", "clients_per_ap"])?;
            Ok(GridSpec::Checkerboard {
                aps,
                clients_per_ap,
            })
        }
        other => Err(SchemaError::at(
            n.span,
            format!("unknown grid constructor `{other}` (expected Grid or Checkerboard)"),
        )),
    }
}

fn partition_of(n: &SNode) -> Res<PartitionSpec> {
    match &n.node {
        Node::Ident(s) if s == "Components" => Ok(PartitionSpec::Components),
        Node::Ident(s) if s == "Cut" => Ok(PartitionSpec::Cut),
        _ => Err(SchemaError::at(n.span, "expected `Components` or `Cut`")),
    }
}

fn decode_city(n: &SNode) -> Res<CityDoc> {
    let mut f = Fields::new(n, "City")?;
    check_version(&mut f)?;
    let seed = u64_of(f.req("seed")?)?;
    let grid = grid_of(f.req("grid")?)?;
    let warmup = match f.get("warmup_s") {
        Some(v) => dur_of(v, "warmup_s")?,
        None => SimDuration::from_millis(1000),
    };
    let duration = match f.get("duration_s") {
        Some(v) => pos_dur_of(v, "duration_s")?,
        None => SimDuration::from_millis(2000),
    };
    let sample_interval = match f.get("sample_interval_s") {
        Some(v) => pos_dur_of(v, "sample_interval_s")?,
        None => SimDuration::from_millis(100),
    };
    let sync_window = match f.get("sync_window_s") {
        Some(v) => pos_dur_of(v, "sync_window_s")?,
        None => SimDuration::from_millis(200),
    };
    let downlink_bytes = match f.get("downlink_bytes") {
        Some(v) => {
            let b = usize_of(v)?;
            if b == 0 {
                return Err(SchemaError::at(v.span, "`downlink_bytes` must be positive"));
            }
            b
        }
        None => 1000,
    };
    let uplink_bytes = match f.get("uplink_bytes") {
        Some(v) => opt_usize_of(v, "uplink_bytes")?,
        None => Some(500),
    };
    // The base city is built here once so per-cell overrides can be
    // validated against the actual cell maps.
    let base = match grid {
        GridSpec::Grid {
            aps,
            clients_per_ap,
            spacing_m,
            range_m,
        } => CityScenario::grid(seed, aps, clients_per_ap, spacing_m, range_m),
        GridSpec::Checkerboard {
            aps,
            clients_per_ap,
        } => CityScenario::checkerboard(seed, aps, clients_per_ap),
    };
    let mut overrides = Vec::new();
    if let Some(v) = f.get("overrides") {
        for o in list_of(v)? {
            let mut of = Fields::new(o, "Cell")?;
            let cell_node = of.req("cell")?;
            let cell = usize_of(cell_node)?;
            let Some(city_cell) = base.cells.get(cell) else {
                return Err(SchemaError::at(
                    cell_node.span,
                    format!(
                        "cell index {cell} out of range (the city has {} cells)",
                        base.cells.len()
                    ),
                ));
            };
            if overrides.iter().any(|x: &CellOverride| x.cell == cell) {
                return Err(SchemaError::at(
                    cell_node.span,
                    format!("duplicate override for cell {cell}"),
                ));
            }
            let mics = strike_list_of(of.req("mics")?, city_cell.map, None)?;
            of.finish(&["cell", "mics"])?;
            overrides.push(CellOverride { cell, mics });
        }
    }
    let faults = match f.get("faults") {
        Some(v) => Some(faults_of(v)?),
        None => None,
    };
    let shards = match f.get("shards") {
        Some(v) => {
            let s = usize_of(v)?;
            if s == 0 {
                return Err(SchemaError::at(v.span, "`shards` must be at least 1"));
            }
            s
        }
        None => 1,
    };
    let partition = match f.get("partition") {
        Some(v) => partition_of(v)?,
        None => PartitionSpec::Components,
    };
    f.finish(&[
        "version",
        "seed",
        "grid",
        "warmup_s",
        "duration_s",
        "sample_interval_s",
        "sync_window_s",
        "downlink_bytes",
        "uplink_bytes",
        "overrides",
        "faults",
        "shards",
        "partition",
    ])?;
    Ok(CityDoc {
        seed,
        grid,
        warmup,
        duration,
        sample_interval,
        sync_window,
        downlink_bytes,
        uplink_bytes,
        overrides,
        faults,
        shards,
        partition,
    })
}

fn locale_class_of(n: &SNode) -> Res<LocaleClass> {
    match &n.node {
        Node::Ident(s) if s == "Urban" => Ok(LocaleClass::Urban),
        Node::Ident(s) if s == "Suburban" => Ok(LocaleClass::Suburban),
        Node::Ident(s) if s == "Rural" => Ok(LocaleClass::Rural),
        _ => Err(SchemaError::at(
            n.span,
            "expected a locale class: `Urban`, `Suburban` or `Rural`",
        )),
    }
}

fn decode_locale_contrast(n: &SNode) -> Res<LocaleContrastDoc> {
    let mut f = Fields::new(n, "LocaleContrast")?;
    check_version(&mut f)?;
    let seed = u64_of(f.req("seed")?)?;
    let classes_node = f.req("classes")?;
    let classes = list_of(classes_node)?
        .iter()
        .map(locale_class_of)
        .collect::<Res<Vec<_>>>()?;
    if classes.is_empty() {
        return Err(SchemaError::at(
            classes_node.span,
            "`classes` must list at least one locale class",
        ));
    }
    let clients_node = f.req("clients")?;
    let clients = usize_of(clients_node)?;
    if clients == 0 {
        return Err(SchemaError::at(
            clients_node.span,
            "`clients` must be at least 1",
        ));
    }
    let warmup = dur_of(f.req("warmup_s")?, "warmup_s")?;
    let duration = pos_dur_of(f.req("duration_s")?, "duration_s")?;
    let discovery_trials = match f.get("discovery_trials") {
        Some(v) => u64_of(v)?,
        None => 40,
    };
    f.finish(&[
        "version",
        "seed",
        "classes",
        "clients",
        "warmup_s",
        "duration_s",
        "discovery_trials",
    ])?;
    Ok(LocaleContrastDoc {
        seed,
        classes,
        clients,
        warmup,
        duration,
        discovery_trials,
    })
}

fn decode_discovery_sweep(n: &SNode) -> Res<DiscoverySweepDoc> {
    let mut f = Fields::new(n, "DiscoverySweep")?;
    check_version(&mut f)?;
    let trials_node = f.req("trials")?;
    let trials = usize_of(trials_node)?;
    if trials == 0 {
        return Err(SchemaError::at(
            trials_node.span,
            "`trials` must be at least 1",
        ));
    }
    let (min_node, min_width) = match f.get("min_width") {
        Some(v) => (Some(v), usize_of(v)?),
        None => (None, 1),
    };
    let (max_node, max_width) = match f.get("max_width") {
        Some(v) => (Some(v), usize_of(v)?),
        None => (None, NUM_UHF_CHANNELS),
    };
    if min_width == 0 {
        let span = min_node.map_or(n.span, |v| v.span);
        return Err(SchemaError::at(span, "`min_width` must be at least 1"));
    }
    if max_width > NUM_UHF_CHANNELS {
        let span = max_node.map_or(n.span, |v| v.span);
        return Err(SchemaError::at(
            span,
            format!("`max_width` must be at most {NUM_UHF_CHANNELS}"),
        ));
    }
    if min_width > max_width {
        let span = max_node.map_or(n.span, |v| v.span);
        return Err(SchemaError::at(
            span,
            "`max_width` must be at least `min_width`",
        ));
    }
    f.finish(&["version", "trials", "min_width", "max_width"])?;
    Ok(DiscoverySweepDoc {
        trials,
        min_width,
        max_width,
    })
}

fn decode_roadtrip(n: &SNode) -> Res<RoadtripDoc> {
    let mut f = Fields::new(n, "Roadtrip")?;
    check_version(&mut f)?;
    let stations = list_of(f.req("stations")?)?
        .iter()
        .map(|s| {
            let mut sf = Fields::new(s, "Station")?;
            let channel = uhf_of(sf.req("channel")?)?;
            let x_km = finite_f64_of(sf.req("x_km")?, "x_km")?;
            let y_km = finite_f64_of(sf.req("y_km")?, "y_km")?;
            let erp_kw = pos_f64_of(sf.req("erp_kw")?, "erp_kw")?;
            sf.finish(&["channel", "x_km", "y_km", "erp_kw"])?;
            Ok(StationSpec {
                channel,
                x_km,
                y_km,
                erp_kw,
            })
        })
        .collect::<Res<Vec<_>>>()?;
    let route_node = f.req("route")?;
    let mut rf = Fields::new(route_node, "Route")?;
    let steps = usize_of(rf.req("steps")?)?;
    let step_km = pos_f64_of(rf.req("step_km")?, "step_km")?;
    rf.finish(&["steps", "step_km"])?;
    let route = RouteSpec { steps, step_km };
    f.finish(&["version", "stations", "route"])?;
    Ok(RoadtripDoc { stations, route })
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Parses a scenario document from source text. The root struct name
/// selects the document kind.
pub fn parse_str(src: &str) -> Result<ScenarioDoc, SchemaError> {
    let root = parse_root(src)?;
    let Node::Struct {
        name: Some(name), ..
    } = &root.node
    else {
        return Err(SchemaError::at(
            root.span,
            "a scenario document is a named struct, e.g. `Scenario(version: 1, ...)`",
        ));
    };
    match name.as_str() {
        "Scenario" => Ok(ScenarioDoc::SingleAp(decode_single(&root)?)),
        "City" => Ok(ScenarioDoc::City(decode_city(&root)?)),
        "LocaleContrast" => Ok(ScenarioDoc::LocaleContrast(decode_locale_contrast(&root)?)),
        "DiscoverySweep" => Ok(ScenarioDoc::DiscoverySweep(decode_discovery_sweep(&root)?)),
        "Roadtrip" => Ok(ScenarioDoc::Roadtrip(decode_roadtrip(&root)?)),
        other => Err(SchemaError::at(
            root.span,
            format!(
                "unknown document kind `{other}` (expected Scenario, City, LocaleContrast, \
                 DiscoverySweep or Roadtrip)"
            ),
        )),
    }
}

/// Loads and parses a scenario file, prefixing every diagnostic with
/// the file path (`path:line:col: message`).
pub fn load(path: impl AsRef<Path>) -> Result<ScenarioDoc, LoadError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
        path: path.display().to_string(),
        msg: e.to_string(),
    })?;
    parse_str(&src).map_err(|err| LoadError::Schema {
        path: path.display().to_string(),
        err,
    })
}

// ---------------------------------------------------------------------------
// Program interpreters
// ---------------------------------------------------------------------------

/// One discovery trial of a [`LocalePhase`]: a drawn AP placement and
/// the oracle seed both discovery algorithms run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveryTrialSpec {
    /// AP channel for this trial.
    pub ap: WfChannel,
    /// Seed of the per-trial [`SyntheticOracle`] RNG.
    pub oracle_seed: u64,
}

/// One phase of a [`LocaleContrastDoc`]: the sampled locale, the
/// throughput scenario, and the discovery trial plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalePhase {
    /// The phase's locale class.
    pub class: LocaleClass,
    /// The sampled locale.
    pub locale: Locale,
    /// The phase's throughput scenario.
    pub scenario: Scenario,
    /// Discovery trials (empty when the map admits no channel).
    pub trials: Vec<DiscoveryTrialSpec>,
}

/// Expands a [`LocaleContrastDoc`] into its phases, reproducing the
/// `examples/rural_broadband.rs` draw order exactly: one shared ChaCha8
/// stream samples each locale *and* each phase's AP placements, in
/// document order, so the classes are draw-coupled just as the
/// hand-coded loop was.
pub fn locale_contrast_phases(doc: &LocaleContrastDoc) -> Vec<LocalePhase> {
    let mut rng = ChaCha8Rng::seed_from_u64(doc.seed);
    let mut phases = Vec::new();
    for &class in &doc.classes {
        let locale = Locale::sample(class, &mut rng);
        let mut scenario = Scenario::new(
            doc.seed ^ class.label().len() as u64,
            locale.map,
            doc.clients,
        );
        scenario.warmup = doc.warmup;
        scenario.duration = doc.duration;
        let placements = locale.map.available_channels();
        let mut trials = Vec::new();
        if !placements.is_empty() {
            for t in 0..doc.discovery_trials {
                let ap = placements[rng.gen_range(0..placements.len())];
                trials.push(DiscoveryTrialSpec {
                    ap,
                    oracle_seed: doc.seed.wrapping_add(t),
                });
            }
        }
        phases.push(LocalePhase {
            class,
            locale,
            scenario,
            trials,
        });
    }
    phases
}

/// Mean discovery dwell counts for one fragment width of a
/// [`DiscoverySweepDoc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// Fragment width (free channels 0..width).
    pub width: usize,
    /// Mean scans of the exhaustive baseline.
    pub baseline: f64,
    /// Mean scans of L-SIFT.
    pub l_sift: f64,
    /// Mean scans of J-SIFT.
    pub j_sift: f64,
}

/// Runs a [`DiscoverySweepDoc`], reproducing the
/// `examples/discovery_race.rs` draw order exactly: per width one
/// ChaCha8 stream seeded by the width draws the placement then three
/// oracle seeds per trial, interleaved with the three algorithms.
pub fn run_discovery_sweep(doc: &DiscoverySweepDoc) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for width in doc.min_width..=doc.max_width {
        let mut map = SpectrumMap::all_occupied();
        for i in 0..width {
            map.set_free(UhfChannel::from_index(i));
        }
        let placements = map.available_channels();
        let mut rng = ChaCha8Rng::seed_from_u64(width as u64);
        let mut sums = [0.0f64; 3];
        for _ in 0..doc.trials {
            let ap = placements[rng.gen_range(0..placements.len())];
            let mk = |s| SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(s));
            if let Some(o) = baseline_discovery(&mut mk(rng.gen()), map) {
                sums[0] += f64::from(o.scans);
            }
            if let Some(o) = l_sift_discovery(&mut mk(rng.gen()), map) {
                sums[1] += f64::from(o.scans);
            }
            if let Some(o) = j_sift_discovery(&mut mk(rng.gen()), map) {
                sums[2] += f64::from(o.scans);
            }
        }
        #[allow(clippy::cast_precision_loss)] // trial counts are small
        let [baseline, l_sift, j_sift] = sums.map(|s| s / doc.trials as f64);
        rows.push(SweepRow {
            width,
            baseline,
            l_sift,
            j_sift,
        });
    }
    rows
}

/// One queried point of a [`RoadtripDoc`] route.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadStep {
    /// Position along the x axis (km).
    pub x_km: f64,
    /// The database-derived map at this point.
    pub map: SpectrumMap,
    /// The channel WhiteFi would pick here (None if nothing fits).
    pub pick: Option<WfChannel>,
}

/// Runs a [`RoadtripDoc`]: registers the stations, then queries the
/// database at every route point, exactly as `examples/roadtrip.rs`.
pub fn run_roadtrip(doc: &RoadtripDoc) -> Vec<RoadStep> {
    let mut db = GeoDatabase::new();
    for s in &doc.stations {
        db.register(StationRecord {
            channel: s.channel,
            site: Location::new(s.x_km, s.y_km),
            erp_kw: s.erp_kw,
        });
    }
    let mut steps = Vec::new();
    for step in 0..=doc.route.steps {
        #[allow(clippy::cast_precision_loss)] // route steps are small
        let x = step as f64 * doc.route.step_km;
        let map = db.query(Location::new(x, 0.0));
        let report = NodeReport {
            map,
            airtime: AirtimeVector::idle(),
        };
        let pick = select_channel(&report, &[]).map(|(c, _)| c);
        steps.push(RoadStep { x_km: x, map, pick });
    }
    steps
}

// ---------------------------------------------------------------------------
// Serialization (canonical form)
// ---------------------------------------------------------------------------

/// Formats a float so [`parse_str`] reads it back exactly (shortest
/// round-trip representation, always with a decimal point or exponent).
fn fmt_f(v: f64) -> String {
    format!("{v:?}")
}

fn fmt_dur(d: SimDuration) -> String {
    #[allow(clippy::cast_precision_loss)] // schema durations are < 1e15 ns
    fmt_f(d.as_nanos() as f64 / 1e9)
}

fn fmt_time(t: SimTime) -> String {
    #[allow(clippy::cast_precision_loss)] // schema times are < 1e15 ns
    fmt_f(t.as_nanos() as f64 / 1e9)
}

fn fmt_wf(ch: WfChannel) -> String {
    let w = match ch.width() {
        Width::W5 => "W5",
        Width::W10 => "W10",
        Width::W20 => "W20",
    };
    format!("{w}({})", ch.center().index())
}

fn fmt_opt_wf(ch: Option<WfChannel>) -> String {
    match ch {
        Some(c) => format!("Some({})", fmt_wf(c)),
        None => "None".into(),
    }
}

fn fmt_usize_list(idx: &[usize]) -> String {
    let items: Vec<String> = idx.iter().map(ToString::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn write_strike(out: &mut String, indent: &str, s: &MicStrike, with_at: bool) {
    let _ = write!(
        out,
        "{indent}Strike(channel: {}, on_s: {}, off_s: {}",
        s.channel.index(),
        fmt_time(s.on),
        fmt_time(s.off)
    );
    if with_at {
        let at = match s.at {
            MicAt::Ap => "Ap".into(),
            MicAt::Everyone => "Everyone".into(),
            MicAt::Client(i) => format!("Client({i})"),
        };
        let _ = write!(out, ", at: {at}");
    }
    let _ = writeln!(out, "),");
}

fn write_traffic(out: &mut String, t: &TrafficSpec) {
    match t {
        TrafficSpec::Cbr { interval } => {
            let _ = write!(out, "Cbr(interval_s: {})", fmt_dur(*interval));
        }
        TrafficSpec::Markov {
            interval,
            mean_active,
            mean_passive,
        } => {
            let _ = write!(
                out,
                "Markov(interval_s: {}, mean_active_s: {}, mean_passive_s: {})",
                fmt_dur(*interval),
                fmt_dur(*mean_active),
                fmt_dur(*mean_passive)
            );
        }
        TrafficSpec::Scripted { interval, windows } => {
            let ws: Vec<String> = windows
                .iter()
                .map(|(on, off)| format!("({}, {})", fmt_time(*on), fmt_time(*off)))
                .collect();
            let _ = write!(
                out,
                "Scripted(interval_s: {}, windows: [{}])",
                fmt_dur(*interval),
                ws.join(", ")
            );
        }
        TrafficSpec::Diurnal {
            interval,
            on,
            off,
            phase,
        } => {
            let _ = write!(
                out,
                "Diurnal(interval_s: {}, on_s: {}, off_s: {}, phase_s: {})",
                fmt_dur(*interval),
                fmt_dur(*on),
                fmt_dur(*off),
                fmt_dur(*phase)
            );
        }
    }
}

fn write_faults(out: &mut String, indent: &str, p: &FaultPlan) {
    let _ = writeln!(out, "{indent}faults: Faults(");
    let _ = writeln!(out, "{indent}    seed: {},", p.seed);
    let _ = writeln!(out, "{indent}    drop_prob: {},", fmt_f(p.drop_prob));
    let _ = writeln!(out, "{indent}    dup_prob: {},", fmt_f(p.dup_prob));
    let _ = writeln!(out, "{indent}    delay_prob: {},", fmt_f(p.delay_prob));
    let _ = writeln!(out, "{indent}    max_delay_s: {},", fmt_dur(p.max_delay));
    let _ = writeln!(
        out,
        "{indent}    max_detection_extra_s: {},",
        fmt_dur(p.max_detection_extra)
    );
    let skew = match p.history_skew {
        Some(d) => format!("Some({})", fmt_dur(d)),
        None => "None".into(),
    };
    let _ = writeln!(out, "{indent}    history_skew_s: {skew},");
    let _ = writeln!(out, "{indent}),");
}

impl ScenarioDoc {
    /// Serializes to the canonical `.ron` form. The output re-parses to
    /// an equal document ([`parse_str`] ∘ `to_ron` is the identity on
    /// decoded values).
    pub fn to_ron(&self) -> String {
        let mut out = String::new();
        match self {
            ScenarioDoc::SingleAp(d) => write_single(&mut out, d),
            ScenarioDoc::City(d) => write_city(&mut out, d),
            ScenarioDoc::LocaleContrast(d) => write_locale_contrast(&mut out, d),
            ScenarioDoc::DiscoverySweep(d) => write_discovery_sweep(&mut out, d),
            ScenarioDoc::Roadtrip(d) => write_roadtrip(&mut out, d),
        }
        out
    }
}

fn write_single(out: &mut String, d: &SingleApDoc) {
    let _ = writeln!(out, "Scenario(");
    let _ = writeln!(out, "    version: {SCHEMA_VERSION},");
    let _ = writeln!(out, "    seed: {},", d.seed);
    let map = match &d.map {
        MapSpec::Free(idx) => format!("Free({})", fmt_usize_list(idx)),
        MapSpec::Occupied(idx) => format!("Occupied({})", fmt_usize_list(idx)),
    };
    let _ = writeln!(out, "    map: {map},");
    let _ = writeln!(out, "    clients: {},", d.clients);
    let _ = writeln!(out, "    warmup_s: {},", fmt_dur(d.warmup));
    let _ = writeln!(out, "    duration_s: {},", fmt_dur(d.duration));
    let _ = writeln!(
        out,
        "    sample_interval_s: {},",
        fmt_dur(d.sample_interval)
    );
    let _ = writeln!(out, "    downlink_bytes: {},", d.downlink_bytes);
    let uplink = match d.uplink_bytes {
        Some(b) => format!("Some({b})"),
        None => "None".into(),
    };
    let _ = writeln!(out, "    uplink_bytes: {uplink},");
    if !d.mics.is_empty() {
        let _ = writeln!(out, "    mics: [");
        for s in &d.mics {
            write_strike(out, "        ", s, true);
        }
        let _ = writeln!(out, "    ],");
    }
    if let Some(storm) = &d.mic_storm {
        let _ = writeln!(out, "    mic_storm: Storm(");
        let _ = writeln!(out, "        prob: {},", fmt_f(storm.prob));
        let _ = writeln!(out, "        mean_off_s: {},", fmt_f(storm.mean_off_s));
        let _ = writeln!(out, "        mean_on_s: {},", fmt_f(storm.mean_on_s));
        let _ = writeln!(out, "        horizon_s: {},", fmt_dur(storm.horizon));
        let seed = match storm.seed {
            SeedSource::Scenario => "Scenario".into(),
            SeedSource::Fixed(x) => format!("Fixed({x})"),
        };
        let _ = writeln!(out, "        seed: {seed},");
        let _ = writeln!(out, "    ),");
    }
    if !d.background.is_empty() {
        let _ = writeln!(out, "    background: [");
        for b in &d.background {
            let _ = write!(
                out,
                "        Background(channel: {}, traffic: ",
                fmt_wf(b.channel)
            );
            write_traffic(out, &b.traffic);
            let _ = writeln!(out, "),");
        }
        let _ = writeln!(out, "    ],");
    }
    if let Some(p) = &d.faults {
        write_faults(out, "    ", p);
    }
    let run = match d.run {
        RunSpec::Whitefi { initial } => format!("Whitefi(initial: {})", fmt_opt_wf(initial)),
        RunSpec::Fixed { channel } => format!("Fixed(channel: {})", fmt_wf(channel)),
    };
    let _ = writeln!(out, "    run: {run},");
    if let Some(ch) = d.contrast_fixed {
        let _ = writeln!(out, "    contrast_fixed: {},", fmt_wf(ch));
    }
    let _ = writeln!(out, ")");
}

fn write_city(out: &mut String, d: &CityDoc) {
    let _ = writeln!(out, "City(");
    let _ = writeln!(out, "    version: {SCHEMA_VERSION},");
    let _ = writeln!(out, "    seed: {},", d.seed);
    let grid = match d.grid {
        GridSpec::Grid {
            aps,
            clients_per_ap,
            spacing_m,
            range_m,
        } => format!(
            "Grid(aps: {aps}, clients_per_ap: {clients_per_ap}, spacing_m: {}, range_m: {})",
            fmt_f(spacing_m),
            fmt_f(range_m)
        ),
        GridSpec::Checkerboard {
            aps,
            clients_per_ap,
        } => {
            format!("Checkerboard(aps: {aps}, clients_per_ap: {clients_per_ap})")
        }
    };
    let _ = writeln!(out, "    grid: {grid},");
    let _ = writeln!(out, "    warmup_s: {},", fmt_dur(d.warmup));
    let _ = writeln!(out, "    duration_s: {},", fmt_dur(d.duration));
    let _ = writeln!(
        out,
        "    sample_interval_s: {},",
        fmt_dur(d.sample_interval)
    );
    let _ = writeln!(out, "    sync_window_s: {},", fmt_dur(d.sync_window));
    let _ = writeln!(out, "    downlink_bytes: {},", d.downlink_bytes);
    let uplink = match d.uplink_bytes {
        Some(b) => format!("Some({b})"),
        None => "None".into(),
    };
    let _ = writeln!(out, "    uplink_bytes: {uplink},");
    if !d.overrides.is_empty() {
        let _ = writeln!(out, "    overrides: [");
        for o in &d.overrides {
            let _ = writeln!(out, "        Cell(cell: {}, mics: [", o.cell);
            for s in &o.mics {
                write_strike(out, "            ", s, false);
            }
            let _ = writeln!(out, "        ]),");
        }
        let _ = writeln!(out, "    ],");
    }
    if let Some(p) = &d.faults {
        write_faults(out, "    ", p);
    }
    let _ = writeln!(out, "    shards: {},", d.shards);
    let partition = match d.partition {
        PartitionSpec::Components => "Components",
        PartitionSpec::Cut => "Cut",
    };
    let _ = writeln!(out, "    partition: {partition},");
    let _ = writeln!(out, ")");
}

fn write_locale_contrast(out: &mut String, d: &LocaleContrastDoc) {
    let _ = writeln!(out, "LocaleContrast(");
    let _ = writeln!(out, "    version: {SCHEMA_VERSION},");
    let _ = writeln!(out, "    seed: {},", d.seed);
    let classes: Vec<&str> = d
        .classes
        .iter()
        .map(|c| match c {
            LocaleClass::Urban => "Urban",
            LocaleClass::Suburban => "Suburban",
            LocaleClass::Rural => "Rural",
        })
        .collect();
    let _ = writeln!(out, "    classes: [{}],", classes.join(", "));
    let _ = writeln!(out, "    clients: {},", d.clients);
    let _ = writeln!(out, "    warmup_s: {},", fmt_dur(d.warmup));
    let _ = writeln!(out, "    duration_s: {},", fmt_dur(d.duration));
    let _ = writeln!(out, "    discovery_trials: {},", d.discovery_trials);
    let _ = writeln!(out, ")");
}

fn write_discovery_sweep(out: &mut String, d: &DiscoverySweepDoc) {
    let _ = writeln!(out, "DiscoverySweep(");
    let _ = writeln!(out, "    version: {SCHEMA_VERSION},");
    let _ = writeln!(out, "    trials: {},", d.trials);
    let _ = writeln!(out, "    min_width: {},", d.min_width);
    let _ = writeln!(out, "    max_width: {},", d.max_width);
    let _ = writeln!(out, ")");
}

fn write_roadtrip(out: &mut String, d: &RoadtripDoc) {
    let _ = writeln!(out, "Roadtrip(");
    let _ = writeln!(out, "    version: {SCHEMA_VERSION},");
    let _ = writeln!(out, "    stations: [");
    for s in &d.stations {
        let _ = writeln!(
            out,
            "        Station(channel: {}, x_km: {}, y_km: {}, erp_kw: {}),",
            s.channel.index(),
            fmt_f(s.x_km),
            fmt_f(s.y_km),
            fmt_f(s.erp_kw)
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    route: Route(steps: {}, step_km: {}),",
        d.route.steps,
        fmt_f(d.route.step_km)
    );
    let _ = writeln!(out, ")");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(src: &str) -> SchemaError {
        match parse_str(src) {
            Err(e) => e,
            Ok(_) => panic!("expected a schema error for {src:?}"),
        }
    }

    #[test]
    fn minimal_scenario_parses() {
        let doc = parse_str(
            "Scenario(version: 1, seed: 7, map: Free([3, 4, 5]), clients: 2,\n\
             warmup_s: 1.0, duration_s: 2.0, sample_interval_s: 0.5)",
        )
        .expect("parses");
        let ScenarioDoc::SingleAp(d) = doc else {
            panic!("wrong kind");
        };
        assert_eq!(d.seed, 7);
        assert_eq!(d.clients, 2);
        assert_eq!(d.downlink_bytes, 1000);
        assert_eq!(d.uplink_bytes, Some(500));
        assert_eq!(d.run, RunSpec::Whitefi { initial: None });
    }

    #[test]
    fn comments_and_trailing_commas_are_trivia() {
        let doc = parse_str(
            "// header\nScenario( /* inline */ version: 1, seed: 1,\n\
             map: Free([0, 1,],), clients: 1, warmup_s: 0, duration_s: 1, sample_interval_s: 1,)",
        );
        assert!(doc.is_ok(), "{doc:?}");
    }

    #[test]
    fn duplicate_key_is_rejected_at_the_second_key() {
        let e = err("Scenario(version: 1,\n version: 2)");
        assert_eq!((e.line, e.col), (2, 2));
        assert!(e.msg.contains("duplicate key"), "{e}");
    }

    #[test]
    fn trailing_content_is_rejected() {
        let e = err("DiscoverySweep(version: 1, trials: 1) junk");
        assert!(e.msg.contains("trailing content"), "{e}");
    }

    #[test]
    fn unterminated_comment_points_at_its_start() {
        let e = err("Scenario(version: 1) /* open");
        assert!(e.msg.contains("unterminated block comment"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn nan_duration_is_rejected_with_value() {
        let e = err(
            "Scenario(version: 1, seed: 1, map: Free([0]), clients: 1,\n\
             warmup_s: NaN, duration_s: 1, sample_interval_s: 1)",
        );
        assert!(e.msg.contains("finite number of seconds"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn diurnal_windows_stop_at_horizon() {
        let spec = TrafficSpec::Diurnal {
            interval: SimDuration::from_millis(10),
            on: SimDuration::from_secs(1),
            off: SimDuration::from_secs(1),
            phase: SimDuration::from_millis(500),
        };
        let BackgroundTraffic::Scripted { windows, .. } = spec.compile(SimDuration::from_secs(5))
        else {
            panic!("diurnal lowers to scripted");
        };
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].0.as_nanos(), 500_000_000);
        assert!(windows.iter().all(|(on, _)| on.as_nanos() < 5_000_000_000));
    }

    #[test]
    fn canonical_serialization_round_trips() {
        let doc = parse_str(
            "Scenario(version: 1, seed: 9, map: Occupied([0, 29]), clients: 3,\n\
             warmup_s: 0.25, duration_s: 3.5, sample_interval_s: 0.1,\n\
             mics: [Strike(channel: 5, on_s: 1.0, off_s: 2.0, at: Client(1))],\n\
             mic_storm: Storm(prob: 0.5, mean_off_s: 40.0, mean_on_s: 10.0, horizon_s: 60.0, seed: Fixed(11)),\n\
             background: [Background(channel: W5(10), traffic: Diurnal(interval_s: 0.02, on_s: 1.0, off_s: 0.5, phase_s: 0.0))],\n\
             faults: Faults(seed: 3, drop_prob: 0.1, history_skew_s: Some(2.0)),\n\
             run: Whitefi(initial: Some(W20(7))), contrast_fixed: W10(3))",
        )
        .expect("parses");
        let ron = doc.to_ron();
        let back = parse_str(&ron).expect("canonical form parses");
        assert_eq!(doc, back);
        assert_eq!(ron, back.to_ron());
    }
}
