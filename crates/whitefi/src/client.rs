//! The WhiteFi client state machine.
//!
//! A connected client:
//!
//! * tracks the AP through its 100 ms beacons (which advertise the backup
//!   channel),
//! * measures per-UHF-channel airtime with its scanning radio, visiting
//!   one channel per dwell ("Every client and AP using WhiteFi spends 1
//!   second on every UHF channel to determine the airtime utilization
//!   using SIFT", §5.4.2),
//! * periodically sends its spectrum map and airtime vector to the AP as
//!   a control message (§4.1),
//! * optionally sources uplink traffic.
//!
//! On losing the AP — either because an incumbent appeared on the main
//! channel at the client ("if a client detects an incumbent, it will
//! disconnect from the AP", §4.1) or because no beacon/data has arrived
//! within the watchdog interval ("if a client senses that a disconnection
//! has occurred (e.g., because no data packets have been received in a
//! given interval)", §4.3) — the client clears its queue, retunes to the
//! advertised backup channel, and chirps until it hears the AP's switch
//! announcement. It never transmits a single frame on a channel its own
//! map marks as incumbent-occupied.

use crate::chirp::{choose_backup, choose_secondary_backup};
use crate::discovery::{sift_match_bursts, JSiftMachine, ScanStep};
use whitefi_mac::{Behavior, Ctx, Frame, FrameKind, NodeId};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{AirtimeVector, ChannelLoad, SpectrumMap, UhfChannel, WfChannel};

/// Timer keys.
mod keys {
    pub const REPORT: u64 = 1;
    pub const SCAN: u64 = 2;
    pub const WATCHDOG: u64 = 3;
    pub const CHIRP: u64 = 4;
    pub const PUMP: u64 = 5;
    pub const DISCOVER: u64 = 6;
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The AP's node id.
    pub ap: NodeId,
    /// Identity slot encoded in chirp lengths (§4.3's OOK extension).
    pub slot: u8,
    /// Interval between control reports to the AP.
    pub report_interval: SimDuration,
    /// Scanner dwell per UHF channel for airtime measurement.
    pub scan_dwell: SimDuration,
    /// Silence from the AP after which the client declares disconnection.
    pub disconnect_timeout: SimDuration,
    /// Interval between chirps while disconnected.
    pub chirp_interval: SimDuration,
    /// Uplink payload bytes per frame; `None` disables uplink traffic.
    pub uplink_bytes: Option<usize>,
    /// Uplink CBR interval; `None` with `uplink_bytes` set means
    /// backlogged (saturating).
    pub uplink_interval: Option<SimDuration>,
    /// Network security key carried in chirps (§4.3's anti-hijack check).
    pub key: u32,
    /// How the client starts: pre-associated on the AP's channel, or
    /// running J-SIFT discovery with its scanner (§4.2.2).
    pub start: ClientStart,
    /// Whether the background airtime scanner runs. Fixed-channel
    /// baseline drivers disable it: the scan handler draws no RNG and
    /// only feeds per-channel airtime into reports, which nothing reads
    /// when the AP never re-selects channels. Report frames stay a
    /// constant 64 bytes on air either way.
    pub scan_enabled: bool,
    /// Dwell per discovery step (long enough to catch one 100 ms-period
    /// beacon).
    pub discovery_dwell: SimDuration,
}

/// Client bootstrap mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientStart {
    /// Already tuned to the AP's channel (the evaluation scenarios).
    #[default]
    Associated,
    /// Unassociated: discover the AP with incremental J-SIFT, then
    /// associate with whichever AP's beacon decodes.
    Discover,
}

impl ClientConfig {
    /// Default protocol timers for simulation scale: 200 ms scanner
    /// dwells, 1 s reports, 600 ms watchdog.
    pub fn new(ap: NodeId, slot: u8) -> Self {
        Self {
            ap,
            slot,
            report_interval: SimDuration::from_secs(1),
            scan_dwell: SimDuration::from_millis(200),
            // Longer than the AP's worst-case absence on a legitimate
            // backup-channel excursion (chirp_collect + announcements).
            disconnect_timeout: SimDuration::from_millis(600),
            chirp_interval: SimDuration::from_millis(200),
            uplink_bytes: None,
            uplink_interval: None,
            key: 0,
            start: ClientStart::Associated,
            scan_enabled: true,
            discovery_dwell: SimDuration::from_millis(120),
        }
    }

    /// Starts the client unassociated, discovering the AP via J-SIFT.
    pub fn discovering(mut self) -> Self {
        self.start = ClientStart::Discover;
        self
    }

    /// Enables a backlogged uplink flow.
    pub fn saturating_uplink(mut self, bytes: usize) -> Self {
        self.uplink_bytes = Some(bytes);
        self.uplink_interval = None;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Discovering,
    Connected,
    Disconnected,
}

/// The client behaviour.
#[derive(Debug)]
pub struct ClientBehavior {
    cfg: ClientConfig,
    ap: NodeId,
    mode: Mode,
    last_heard: SimTime,
    known_backup: Option<WfChannel>,
    airtime: AirtimeVector,
    scan_cursor: usize,
    discovery: Option<JSiftMachine>,
    /// Armed while a discovery decode dwell listens on a candidate
    /// channel; holds the candidate.
    decode_armed: Option<WfChannel>,
    /// Beacon heard (src, channel) since the decode dwell was armed.
    beacon_heard: Option<(NodeId, WfChannel)>,
    /// Number of disconnections experienced (observable for tests).
    pub disconnections: u64,
    /// Number of successful reconnections (observable for tests).
    pub reconnections: u64,
    /// Discovery dwells spent before association (observable for tests).
    pub discovery_scans: u32,
}

impl ClientBehavior {
    /// A client for the given configuration.
    pub fn new(cfg: ClientConfig) -> Self {
        let mode = match cfg.start {
            ClientStart::Associated => Mode::Connected,
            ClientStart::Discover => Mode::Discovering,
        };
        Self {
            ap: cfg.ap,
            cfg,
            mode,
            last_heard: SimTime::ZERO,
            known_backup: None,
            airtime: AirtimeVector::idle(),
            scan_cursor: 0,
            discovery: None,
            decode_armed: None,
            beacon_heard: None,
            disconnections: 0,
            reconnections: 0,
            discovery_scans: 0,
        }
    }

    /// The AP this client is (or became) associated with.
    pub fn ap(&self) -> NodeId {
        self.ap
    }

    fn blocked(map: SpectrumMap, ch: WfChannel) -> bool {
        !map.admits(ch)
    }

    fn pump_uplink(&mut self, ctx: &mut Ctx) {
        if self.mode != Mode::Connected {
            return;
        }
        let Some(bytes) = self.cfg.uplink_bytes else {
            return;
        };
        if self.cfg.uplink_interval.is_none() {
            while ctx.queue_len() < 2 {
                ctx.send(Frame::data(ctx.id(), self.ap, bytes));
            }
        }
    }

    fn disconnect(&mut self, ctx: &mut Ctx) {
        if self.mode == Mode::Disconnected {
            return;
        }
        self.mode = Mode::Disconnected;
        self.disconnections += 1;
        let main = ctx.channel();
        ctx.clear_queue();
        let map = ctx.spectrum_map();
        // Prefer the AP-advertised backup; fall back to the same
        // deterministic choice the AP makes (first free 5 MHz channel
        // outside the main channel), so a client that never caught a
        // beacon still lands where the AP scans for chirps.
        let backup = self
            .known_backup
            .filter(|&b| !Self::blocked(map, b))
            .or_else(|| choose_backup(map, Some(main)))
            .or_else(|| choose_backup(map, None));
        if let Some(b) = backup {
            ctx.set_channel(b);
            ctx.set_timer(SimDuration::ZERO, keys::CHIRP);
        }
        // If no backup exists at all, stay silent until spectrum frees up
        // (the watchdog keeps firing and will retry).
    }

    fn reconnect(&mut self, target: WfChannel, ctx: &mut Ctx) {
        ctx.set_channel(target);
        self.mode = Mode::Connected;
        self.reconnections += 1;
        self.last_heard = ctx.now();
        self.pump_uplink(ctx);
    }
}

impl Behavior for ClientBehavior {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.last_heard = ctx.now();
        ctx.set_timer(self.cfg.report_interval, keys::REPORT);
        if self.cfg.scan_enabled {
            ctx.set_timer(self.cfg.scan_dwell, keys::SCAN);
        }
        ctx.set_timer(self.cfg.disconnect_timeout, keys::WATCHDOG);
        if let Some(interval) = self.cfg.uplink_interval {
            ctx.set_timer(interval, keys::PUMP);
        } else if self.cfg.uplink_bytes.is_some() {
            ctx.set_timer(SimDuration::from_millis(50), keys::PUMP);
        }
        if self.mode == Mode::Discovering {
            ctx.set_timer(self.cfg.discovery_dwell, keys::DISCOVER);
        }
        self.pump_uplink(ctx);
    }

    fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
        match key {
            keys::REPORT => {
                if self.mode == Mode::Connected {
                    let frame = Frame {
                        src: ctx.id(),
                        dst: Some(self.ap),
                        kind: FrameKind::Report {
                            map: ctx.spectrum_map(),
                            airtime: self.airtime,
                        },
                    };
                    ctx.send(frame);
                }
                ctx.set_timer(self.cfg.report_interval, keys::REPORT);
            }
            keys::SCAN => {
                // Round-robin airtime measurement over free channels.
                let map = ctx.spectrum_map();
                let ch = UhfChannel::from_index(self.scan_cursor);
                if map.is_free(ch) {
                    let busy = ctx.airtime(ch, self.cfg.scan_dwell);
                    let aps = ctx.ap_count(ch, self.cfg.scan_dwell);
                    self.airtime.set_load(ch, ChannelLoad::new(busy, aps));
                }
                self.scan_cursor = (self.scan_cursor + 1) % whitefi_spectrum::NUM_UHF_CHANNELS;
                ctx.set_timer(self.cfg.scan_dwell, keys::SCAN);
            }
            keys::WATCHDOG => {
                if self.mode == Mode::Connected
                    && ctx.now().since(self.last_heard) >= self.cfg.disconnect_timeout
                {
                    self.disconnect(ctx);
                }
                ctx.set_timer(self.cfg.disconnect_timeout, keys::WATCHDOG);
            }
            keys::CHIRP if self.mode == Mode::Disconnected => {
                let map = ctx.spectrum_map();
                // Never chirp over an incumbent: if the backup went
                // bad, move to the secondary backup first.
                if Self::blocked(map, ctx.channel()) {
                    if let Some(next) = choose_secondary_backup(map, None, ctx.channel()) {
                        ctx.set_channel(next);
                    } else {
                        ctx.set_timer(self.cfg.chirp_interval, keys::CHIRP);
                        return;
                    }
                }
                if ctx.queue_len() == 0 {
                    // The chirp's on-air length encodes the identity
                    // slot, readable by SIFT without decoding.
                    ctx.send(Frame {
                        src: ctx.id(),
                        dst: None,
                        kind: FrameKind::Chirp {
                            map,
                            slot: self.cfg.slot,
                            key: self.cfg.key,
                        },
                    });
                }
                ctx.set_timer(self.cfg.chirp_interval, keys::CHIRP);
            }
            keys::DISCOVER if self.mode == Mode::Discovering => {
                // Resolve an armed decode dwell first.
                if let Some(cand) = self.decode_armed.take() {
                    let success = matches!(self.beacon_heard, Some((_, ch)) if ch == cand);
                    if let Some((src, _)) = self.beacon_heard.take().filter(|_| success) {
                        // Associated! Learn the AP and switch to normal
                        // operation; the first report registers us for
                        // downlink traffic.
                        let machine = self.discovery.take();
                        self.discovery_scans = machine.map(|m| m.scans()).unwrap_or(0);
                        self.ap = src;
                        self.mode = Mode::Connected;
                        self.last_heard = ctx.now();
                        ctx.send(Frame {
                            src: ctx.id(),
                            dst: Some(src),
                            kind: FrameKind::Report {
                                map: ctx.spectrum_map(),
                                airtime: self.airtime,
                            },
                        });
                        self.pump_uplink(ctx);
                        return;
                    }
                    if let Some(m) = self.discovery.as_mut() {
                        m.on_decode_result(false);
                    }
                }
                let map = ctx.spectrum_map();
                let machine = self.discovery.get_or_insert_with(|| JSiftMachine::new(map));
                match machine.current() {
                    Some(ScanStep::Sift(ch)) => {
                        // The scanner dwelled on `ch` for the last
                        // interval: match SIFT signatures in its view.
                        let bursts = ctx.visible_bursts(self.cfg.discovery_dwell);
                        let found = sift_match_bursts(&bursts, ch);
                        machine.on_sift_result(found);
                    }
                    Some(ScanStep::Decode(cand)) => {
                        // Tune the transceiver to the candidate and
                        // listen for one dwell.
                        ctx.set_channel(cand);
                        self.decode_armed = Some(cand);
                        self.beacon_heard = None;
                    }
                    None => {
                        // Retry budget exhausted (no AP?): start over.
                        self.discovery = Some(JSiftMachine::new(map));
                    }
                }
                ctx.set_timer(self.cfg.discovery_dwell, keys::DISCOVER);
            }
            keys::PUMP => {
                if self.mode == Mode::Connected {
                    if let (Some(bytes), Some(interval)) =
                        (self.cfg.uplink_bytes, self.cfg.uplink_interval)
                    {
                        if ctx.queue_len() < 4 {
                            ctx.send(Frame::data(ctx.id(), self.ap, bytes));
                        }
                        ctx.set_timer(interval, keys::PUMP);
                        return;
                    }
                }
                self.pump_uplink(ctx);
                if self.cfg.uplink_interval.is_none() && self.cfg.uplink_bytes.is_some() {
                    ctx.set_timer(SimDuration::from_millis(50), keys::PUMP);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut Ctx) {
        match frame.kind {
            FrameKind::Beacon { backup } if self.mode == Mode::Discovering => {
                // Any decodable beacon on the candidate channel ends
                // discovery; remember who sent it.
                self.beacon_heard = Some((frame.src, ctx.channel()));
                if let Some(b) = backup {
                    self.known_backup = Some(b);
                }
            }
            FrameKind::Beacon { backup } if frame.src == self.ap => {
                self.last_heard = ctx.now();
                if let Some(b) = backup {
                    self.known_backup = Some(b);
                }
            }
            FrameKind::SwitchAnnounce { target } if frame.src == self.ap => {
                let map = ctx.spectrum_map();
                if Self::blocked(map, target) {
                    // The new channel is blocked here: stay (or go)
                    // disconnected so the AP learns via chirps.
                    self.disconnect(ctx);
                } else if self.mode == Mode::Disconnected || target != ctx.channel() {
                    self.reconnect(target, ctx);
                } else {
                    self.last_heard = ctx.now();
                }
            }
            FrameKind::Data { .. } if frame.src == self.ap => {
                self.last_heard = ctx.now();
            }
            _ => {}
        }
    }

    fn on_send_result(&mut self, _frame: &Frame, _success: bool, ctx: &mut Ctx) {
        self.pump_uplink(ctx);
    }

    fn on_incumbent_change(&mut self, map: SpectrumMap, ctx: &mut Ctx) {
        match self.mode {
            Mode::Connected => {
                if Self::blocked(map, ctx.channel()) {
                    // "both clients and APs should detect the presence of
                    // a mic on a channel and move away from that channel".
                    self.disconnect(ctx);
                }
            }
            Mode::Disconnected => {
                if Self::blocked(map, ctx.channel()) {
                    if let Some(next) = choose_secondary_backup(map, None, ctx.channel()) {
                        ctx.clear_queue();
                        ctx.set_channel(next);
                    }
                }
            }
            Mode::Discovering => {
                // The map changed mid-discovery: restart over the fresh
                // map (a decode dwell parked on a now-blocked candidate
                // must not linger there either).
                self.discovery = Some(JSiftMachine::new(map));
                self.decode_armed = None;
                self.beacon_heard = None;
                if Self::blocked(map, ctx.channel()) {
                    if let Some(free) = map
                        .available_channels_of_width(whitefi_spectrum::Width::W5)
                        .first()
                    {
                        ctx.set_channel(*free);
                    }
                }
            }
        }
    }
}
