//! The WhiteFi access-point state machine.
//!
//! The AP runs the full §4.1 loop:
//!
//! * beacons every 100 ms, advertising the 5 MHz backup channel;
//! * measures per-UHF-channel airtime with the scanning radio
//!   (round-robin, one channel per dwell);
//! * collects client reports, and periodically re-evaluates the spectrum
//!   assignment with the MCham objective plus hysteresis (voluntary
//!   switches), announcing the move with `SwitchAnnounce` broadcasts on
//!   the old channel before retuning;
//! * vacates immediately when an incumbent appears on the main channel —
//!   an involuntary switch (§4.3): it retunes to the backup channel
//!   without transmitting anything further on the incumbent's channel,
//!   chirps there, collects the chirped spectrum maps, reassigns, and
//!   announces on the backup channel;
//! * scans the backup channel for client chirps every
//!   `backup_scan_interval` (3 s in the paper's §5.3 experiment) using
//!   SIFT burst-length matching on the scanner's view — only when a chirp
//!   is detected does the main radio visit the backup channel.

use crate::assignment::{Assigner, AssignerConfig, Decision};
use crate::chirp::{choose_backup, choose_secondary_backup, ChirpDetector};
use crate::mcham::NodeReport;
use whitefi_mac::{Behavior, Ctx, Frame, FrameKind, NodeId};
use whitefi_phy::synth::duration_to_samples;
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{AirtimeVector, ChannelLoad, SpectrumMap, UhfChannel, WfChannel, Width};

/// Timer keys.
mod keys {
    pub const BEACON: u64 = 1;
    pub const SCAN: u64 = 2;
    pub const REASSESS: u64 = 3;
    pub const BACKUP_SCAN: u64 = 4;
    pub const BACKUP_DONE: u64 = 5;
    pub const SWITCH_FALLBACK: u64 = 6;
    pub const AP_CHIRP: u64 = 7;
    pub const PUMP: u64 = 8;
}

/// AP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ApConfig {
    /// Beacon period (100 ms, as in Wi-Fi).
    pub beacon_interval: SimDuration,
    /// Scanner dwell per UHF channel for airtime measurement.
    pub scan_dwell: SimDuration,
    /// Interval between voluntary re-evaluations of the assignment.
    pub reassess_interval: SimDuration,
    /// Interval between SIFT scans of the backup channel for chirps
    /// ("the AP switched to the backup channel once every 3 seconds",
    /// §5.3).
    pub backup_scan_interval: SimDuration,
    /// Time spent on the backup channel collecting chirped maps (the
    /// threshold interval `T_c` of §4.3).
    pub chirp_collect: SimDuration,
    /// When `false`, the AP never changes channel (the OPT-x baselines).
    pub adaptive: bool,
    /// Downlink payload bytes per frame; `None` disables downlink
    /// traffic.
    pub downlink_bytes: Option<usize>,
    /// Downlink CBR interval; `None` with `downlink_bytes` set means
    /// backlogged round-robin across clients.
    pub downlink_interval: Option<SimDuration>,
    /// Assignment hysteresis knobs.
    pub assigner: AssignerConfig,
    /// Network security key: chirp payloads are processed "only if …
    /// encoded with the network's security key" (§4.3). Fake chirps
    /// still cost the brief main-radio visit to the backup channel.
    pub key: u32,
}

impl Default for ApConfig {
    fn default() -> Self {
        Self {
            beacon_interval: SimDuration::from_millis(100),
            scan_dwell: SimDuration::from_millis(200),
            reassess_interval: SimDuration::from_secs(2),
            backup_scan_interval: SimDuration::from_secs(3),
            // Must stay well below the client watchdog, or every backup
            // excursion would knock connected clients into disconnection.
            chirp_collect: SimDuration::from_millis(300),
            adaptive: true,
            downlink_bytes: None,
            downlink_interval: None,
            assigner: AssignerConfig::default(),
            key: 0,
        }
    }
}

impl ApConfig {
    /// Enables backlogged downlink traffic to all associated clients.
    pub fn saturating_downlink(mut self, bytes: usize) -> Self {
        self.downlink_bytes = Some(bytes);
        self.downlink_interval = None;
        self
    }

    /// Pins the AP to its initial channel (baseline mode).
    pub fn fixed(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Normal operation on the main channel.
    Main,
    /// Announcing a voluntary switch on the old main channel.
    SwitchingFromMain {
        target: WfChannel,
        announces_left: u8,
    },
    /// On the backup channel collecting chirps.
    OnBackup,
    /// Announcing the post-disconnection assignment on the backup channel.
    SwitchingFromBackup {
        target: WfChannel,
        announces_left: u8,
    },
}

/// The AP behaviour.
#[derive(Debug)]
pub struct ApBehavior {
    cfg: ApConfig,
    assigner: Assigner,
    mode: Mode,
    backup: Option<WfChannel>,
    clients: Vec<NodeId>,
    reports: Vec<(NodeId, NodeReport)>,
    chirp_maps: Vec<SpectrumMap>,
    airtime: AirtimeVector,
    scan_cursor: usize,
    bytes_acked_since_eval: u64,
    last_eval: SimTime,
    rr_cursor: usize,
    /// Chirps older than this are already handled; the backup scan only
    /// reacts to newer ones (otherwise the trailing scanner window keeps
    /// re-triggering on the chirps of an already-completed recovery).
    chirp_scan_floor: SimTime,
    /// Channel-switch history `(time, channel)` (observable for tests and
    /// the Figure 14 timeline).
    pub switch_log: Vec<(SimTime, WfChannel)>,
}

impl ApBehavior {
    /// An AP with the given configuration.
    pub fn new(cfg: ApConfig) -> Self {
        Self {
            assigner: Assigner::new(cfg.assigner),
            cfg,
            mode: Mode::Main,
            backup: None,
            clients: Vec::new(),
            reports: Vec::new(),
            chirp_maps: Vec::new(),
            airtime: AirtimeVector::idle(),
            scan_cursor: 0,
            bytes_acked_since_eval: 0,
            last_eval: SimTime::ZERO,
            rr_cursor: 0,
            chirp_scan_floor: SimTime::ZERO,
            switch_log: Vec::new(),
        }
    }

    /// The clients currently associated (learned from reports).
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn own_report(&self, ctx: &Ctx) -> NodeReport {
        NodeReport {
            map: ctx.spectrum_map(),
            airtime: self.airtime,
        }
    }

    fn client_reports(&self) -> Vec<NodeReport> {
        self.reports.iter().map(|(_, r)| *r).collect()
    }

    fn combined_map(&self, ctx: &Ctx) -> SpectrumMap {
        SpectrumMap::union_all(
            std::iter::once(ctx.spectrum_map()).chain(self.reports.iter().map(|(_, r)| r.map)),
        )
    }

    fn refresh_backup(&mut self, ctx: &Ctx) {
        let map = self.combined_map(ctx);
        self.backup = choose_backup(map, self.assigner.current());
    }

    fn pump_downlink(&mut self, ctx: &mut Ctx) {
        if !matches!(self.mode, Mode::Main) {
            return;
        }
        let Some(bytes) = self.cfg.downlink_bytes else {
            return;
        };
        if self.cfg.downlink_interval.is_none() && !self.clients.is_empty() {
            while ctx.queue_len() < 2 {
                let dst = self.clients[self.rr_cursor % self.clients.len()];
                self.rr_cursor += 1;
                ctx.send(Frame::data(ctx.id(), dst, bytes));
            }
        }
    }

    fn announce(&mut self, target: WfChannel, ctx: &mut Ctx) {
        ctx.send_front(Frame {
            src: ctx.id(),
            dst: None,
            kind: FrameKind::SwitchAnnounce { target },
        });
    }

    fn complete_switch(&mut self, target: WfChannel, ctx: &mut Ctx) {
        // The target was selected before the most recent incumbent
        // detection may have landed on it (the SWITCH_FALLBACK timer and
        // in-flight announce completions both outlive detections), so it
        // must be re-checked here: tuning the network onto a primary
        // user would trip the engine compliance meter on the very next
        // frame.
        let map = ctx.spectrum_map();
        if !map.admits(target) {
            if map.admits(ctx.channel()) {
                match self.mode {
                    Mode::OnBackup | Mode::SwitchingFromBackup { .. } => {
                        // Still parked on an admissible backup: keep the
                        // chirped maps, resume chirping, and re-select
                        // with the fresh map at the next BACKUP_DONE.
                        self.mode = Mode::OnBackup;
                        ctx.set_timer(SimDuration::ZERO, keys::AP_CHIRP);
                        ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
                    }
                    _ => {
                        // Voluntary switch aborted mid-flight: stay put.
                        self.mode = Mode::Main;
                        self.assigner.set_current(Some(ctx.channel()));
                    }
                }
            } else {
                self.vacate_to_backup(ctx);
            }
            return;
        }
        // Anything chirped up to now has been handled by this switch.
        self.chirp_scan_floor = ctx.now();
        ctx.clear_queue();
        ctx.set_channel(target);
        self.assigner.set_current(Some(target));
        self.mode = Mode::Main;
        self.refresh_backup(ctx);
        self.switch_log.push((ctx.now(), target));
        // Beacon immediately so clients re-synchronise fast.
        ctx.send(Frame {
            src: ctx.id(),
            dst: None,
            kind: FrameKind::Beacon {
                backup: self.backup,
            },
        });
        // A client may have arrived on the backup channel just after we
        // left it: scan again soon (one-off catch-up ahead of the
        // periodic 3 s cadence) so stragglers reconnect quickly.
        ctx.set_timer(SimDuration::from_secs(1), keys::BACKUP_SCAN);
        self.pump_downlink(ctx);
    }

    /// Begins a voluntary switch: announce on the current channel, then
    /// retune once the announcements have gone out.
    fn begin_voluntary_switch(&mut self, target: WfChannel, ctx: &mut Ctx) {
        self.mode = Mode::SwitchingFromMain {
            target,
            announces_left: 2,
        };
        self.announce(target, ctx);
        self.announce(target, ctx);
        ctx.set_timer(SimDuration::from_millis(500), keys::SWITCH_FALLBACK);
    }

    /// Involuntary vacate: an incumbent owns the main channel. Not one
    /// more frame goes out on it.
    fn vacate_to_backup(&mut self, ctx: &mut Ctx) {
        ctx.clear_queue();
        let map = ctx.spectrum_map();
        let mut backup = self.backup.or_else(|| choose_backup(map, None));
        if let Some(b) = backup {
            if !map.admits(b) {
                backup = choose_secondary_backup(map, None, b);
            }
        }
        let Some(b) = backup else {
            // Nowhere to go: fall silent and retry at the next reassess.
            self.mode = Mode::OnBackup;
            ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
            return;
        };
        self.backup = Some(b);
        ctx.set_channel(b);
        self.mode = Mode::OnBackup;
        self.chirp_maps.clear();
        // The AP chirps too, so clients listening on the backup channel
        // know it is alive (§4.3: the node that detects the primary
        // "switches to the backup channel and transmits a series of
        // chirps").
        ctx.set_timer(SimDuration::ZERO, keys::AP_CHIRP);
        ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
    }

    /// Finds a channel carrying chirps in the scanner's view of the last
    /// scan interval, using SIFT burst-length matching (the decode-free
    /// secondary-radio path of §4.3). The advertised backup channel is
    /// preferred, but *all* channels are scanned: "in addition to
    /// scanning the backup channel for chirps, the AP periodically scans
    /// all channels in an attempt to reconnect with 'lost' nodes" — a
    /// lost client may be chirping on a stale or secondary backup.
    /// "All channels" means all channels the AP's map admits: visiting
    /// a channel an incumbent owns is both useless (the AP could never
    /// operate there) and unsafe, so chirp-shaped bursts outside the
    /// admissible map are ignored. This keeps every channel the AP
    /// reads or tunes to inside its spectrum-map footprint — the
    /// property the influence sharding of DESIGN.md §13 relies on.
    fn chirp_channel(&self, ctx: &Ctx) -> Option<WfChannel> {
        let tol = 4.0;
        let is_chirp = |vb: &whitefi_phy::VisibleBurst| {
            vb.burst.width == Width::W5 && {
                let len = duration_to_samples(vb.burst.duration);
                (0u8..=15).any(|s| (len - ChirpDetector::expected_samples(s)).abs() <= tol)
            }
        };
        let floor = self.chirp_scan_floor;
        let map = ctx.spectrum_map();
        let bursts: Vec<whitefi_phy::VisibleBurst> = ctx
            .visible_bursts(self.cfg.backup_scan_interval)
            .into_iter()
            .filter(|vb| vb.burst.start >= floor && map.admits(vb.channel))
            .collect();
        if let Some(backup) = self.backup {
            if bursts.iter().any(|vb| vb.channel == backup && is_chirp(vb)) {
                return Some(backup);
            }
        }
        bursts.iter().find(|vb| is_chirp(vb)).map(|vb| vb.channel)
    }

    fn reassess(&mut self, ctx: &mut Ctx) {
        if !self.cfg.adaptive || !matches!(self.mode, Mode::Main) {
            return;
        }
        let elapsed = ctx.now().since(self.last_eval);
        let goodput = if elapsed > SimDuration::ZERO {
            Some(self.bytes_acked_since_eval as f64 * 8.0 / elapsed.as_secs_f64() / 1e6)
        } else {
            None
        };
        // Post-switch evaluation: revert if the last voluntary switch
        // measured worse than what we had.
        if let Some(g) = goodput {
            if self.assigner.should_revert(g) {
                // Force an immediate re-evaluation; the hysteresis state
                // has been reset by consuming the pre-switch goodput.
                let ap_report = self.own_report(ctx);
                let clients = self.client_reports();
                if let Decision::Switch(target) = self.assigner.evaluate(&ap_report, &clients, None)
                {
                    if target != ctx.channel() {
                        self.begin_voluntary_switch(target, ctx);
                    }
                }
                self.bytes_acked_since_eval = 0;
                self.last_eval = ctx.now();
                return;
            }
        }
        let ap_report = self.own_report(ctx);
        let clients = self.client_reports();
        match self.assigner.evaluate(&ap_report, &clients, goodput) {
            Decision::Switch(target) if target != ctx.channel() => {
                // "Channel probing" (§4.1): the round-robin airtime
                // vector can be a full scan cycle stale; before
                // committing, probe the target and the current channel
                // with the scanner's fresh trailing window. Without this,
                // two co-located networks chase each other's stale
                // shadows around the band.
                let current = ctx.channel();
                let mut fresh = self.airtime;
                for u in target.spanned().chain(current.spanned()) {
                    let busy = ctx.airtime(u, self.cfg.scan_dwell);
                    let aps = ctx.ap_count(u, self.cfg.scan_dwell);
                    fresh.set_load(u, ChannelLoad::new(busy, aps));
                }
                self.airtime = fresh;
                let fresh_report = NodeReport {
                    map: ap_report.map,
                    airtime: fresh,
                };
                let obj = self.cfg.assigner.objective;
                let t_score = crate::mcham::objective_score(obj, &fresh_report, &clients, target);
                let c_score = crate::mcham::objective_score(obj, &fresh_report, &clients, current);
                let still_better = if c_score > 0.0 {
                    t_score > c_score * (1.0 + self.cfg.assigner.hysteresis)
                } else {
                    t_score > c_score + self.cfg.assigner.hysteresis
                };
                if !still_better {
                    // The probe contradicted the stale vector: stay.
                    self.assigner.set_current(Some(current));
                } else if ap_report.map.admits(current) {
                    self.begin_voluntary_switch(target, ctx);
                } else {
                    // Shouldn't happen (incumbents arrive via
                    // on_incumbent_change), but never announce over one.
                    self.complete_switch(target, ctx);
                }
            }
            _ => {}
        }
        self.bytes_acked_since_eval = 0;
        self.last_eval = ctx.now();
    }
}

impl Behavior for ApBehavior {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.assigner.set_current(Some(ctx.channel()));
        self.switch_log.push((ctx.now(), ctx.channel()));
        self.last_eval = ctx.now();
        self.refresh_backup(ctx);
        ctx.set_timer(SimDuration::ZERO, keys::BEACON);
        // The SCAN and BACKUP_SCAN arms feed channel re-selection and
        // backup maintenance, which fixed-channel runs never consult:
        // their handlers draw no RNG and only update airtime/backup
        // state that `reassess` reads behind the same `adaptive` gate.
        if self.cfg.adaptive {
            ctx.set_timer(self.cfg.scan_dwell, keys::SCAN);
        }
        // Random phase: co-located APs must not re-evaluate in lockstep,
        // or they herd onto the same channels forever. The REASSESS timer
        // (and its jitter draw) stays armed even in fixed mode; the draw
        // comes from this node's private RNG stream, so it cannot shift
        // any other node's random sequence (DESIGN.md §9).
        let jitter = SimDuration::from_nanos(rand::Rng::gen_range(
            ctx.rng(),
            0..self.cfg.reassess_interval.as_nanos().max(1),
        ));
        ctx.set_timer(self.cfg.reassess_interval + jitter, keys::REASSESS);
        if self.cfg.adaptive {
            ctx.set_timer(self.cfg.backup_scan_interval, keys::BACKUP_SCAN);
        }
        if let Some(interval) = self.cfg.downlink_interval {
            ctx.set_timer(interval, keys::PUMP);
        } else if self.cfg.downlink_bytes.is_some() {
            ctx.set_timer(SimDuration::from_millis(50), keys::PUMP);
        }
    }

    fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
        match key {
            keys::BEACON => {
                // Beacon on whatever channel we are tuned to (including
                // the backup channel while collecting chirps) — unless an
                // incumbent owns it.
                if ctx.spectrum_map().admits(ctx.channel()) {
                    ctx.send(Frame {
                        src: ctx.id(),
                        dst: None,
                        kind: FrameKind::Beacon {
                            backup: self.backup,
                        },
                    });
                }
                ctx.set_timer(self.cfg.beacon_interval, keys::BEACON);
            }
            keys::SCAN => {
                let map = ctx.spectrum_map();
                let ch = UhfChannel::from_index(self.scan_cursor);
                if map.is_free(ch) {
                    let busy = ctx.airtime(ch, self.cfg.scan_dwell);
                    let aps = ctx.ap_count(ch, self.cfg.scan_dwell);
                    self.airtime.set_load(ch, ChannelLoad::new(busy, aps));
                }
                self.scan_cursor = (self.scan_cursor + 1) % whitefi_spectrum::NUM_UHF_CHANNELS;
                ctx.set_timer(self.cfg.scan_dwell, keys::SCAN);
            }
            keys::REASSESS => {
                self.reassess(ctx);
                // Keep a light per-round jitter so two APs that happened
                // to align drift apart again.
                let jitter = SimDuration::from_nanos(rand::Rng::gen_range(
                    ctx.rng(),
                    0..(self.cfg.reassess_interval.as_nanos() / 4).max(1),
                ));
                ctx.set_timer(self.cfg.reassess_interval + jitter, keys::REASSESS);
            }
            keys::BACKUP_SCAN => {
                if matches!(self.mode, Mode::Main) && self.cfg.adaptive {
                    if let Some(ch) = self.chirp_channel(ctx) {
                        // A lost client is calling: visit that channel
                        // with the main radio to decode its chirps.
                        ctx.clear_queue();
                        ctx.set_channel(ch);
                        self.mode = Mode::OnBackup;
                        self.chirp_maps.clear();
                        ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
                    }
                }
                ctx.set_timer(self.cfg.backup_scan_interval, keys::BACKUP_SCAN);
            }
            keys::BACKUP_DONE => {
                if !matches!(self.mode, Mode::OnBackup) {
                    return;
                }
                // Reassign spectrum from the collective availability
                // advertised on the backup channel plus our own view.
                let ap_report = self.own_report(ctx);
                let mut clients = self.client_reports();
                clients.extend(self.chirp_maps.iter().map(|&map| NodeReport {
                    map,
                    airtime: self.airtime,
                }));
                match crate::mcham::select_channel(&ap_report, &clients) {
                    Some((target, _)) => {
                        self.mode = Mode::SwitchingFromBackup {
                            target,
                            announces_left: 2,
                        };
                        self.announce(target, ctx);
                        self.announce(target, ctx);
                        ctx.set_timer(SimDuration::from_millis(500), keys::SWITCH_FALLBACK);
                    }
                    None => {
                        // No channel free anywhere: keep waiting on the
                        // backup channel and retry.
                        ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
                    }
                }
            }
            keys::SWITCH_FALLBACK => match self.mode {
                Mode::SwitchingFromMain { target, .. }
                | Mode::SwitchingFromBackup { target, .. } => {
                    self.complete_switch(target, ctx);
                }
                _ => {}
            },
            keys::AP_CHIRP => {
                if matches!(self.mode, Mode::OnBackup) {
                    let map = ctx.spectrum_map();
                    if map.admits(ctx.channel()) && ctx.queue_len() == 0 {
                        ctx.send(Frame {
                            src: ctx.id(),
                            dst: None,
                            kind: FrameKind::Chirp {
                                map,
                                slot: 0,
                                key: self.cfg.key,
                            },
                        });
                    }
                    ctx.set_timer(SimDuration::from_millis(100), keys::AP_CHIRP);
                }
            }
            keys::PUMP => {
                if let (Some(bytes), Some(interval)) =
                    (self.cfg.downlink_bytes, self.cfg.downlink_interval)
                {
                    if matches!(self.mode, Mode::Main)
                        && !self.clients.is_empty()
                        && ctx.queue_len() < 4
                    {
                        let dst = self.clients[self.rr_cursor % self.clients.len()];
                        self.rr_cursor += 1;
                        ctx.send(Frame::data(ctx.id(), dst, bytes));
                    }
                    ctx.set_timer(interval, keys::PUMP);
                } else {
                    self.pump_downlink(ctx);
                    ctx.set_timer(SimDuration::from_millis(50), keys::PUMP);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut Ctx) {
        match frame.kind {
            FrameKind::Report { map, airtime } => {
                if !self.clients.contains(&frame.src) {
                    self.clients.push(frame.src);
                    self.pump_downlink(ctx);
                }
                let report = NodeReport { map, airtime };
                if let Some(entry) = self.reports.iter_mut().find(|(id, _)| *id == frame.src) {
                    entry.1 = report;
                } else {
                    self.reports.push((frame.src, report));
                }
            }
            FrameKind::Chirp { map, key, .. }
                // §4.3: process the chirp only when it carries the
                // network's key — fake chirps are discarded after the
                // (bounded) cost of having visited the backup channel.
                if matches!(self.mode, Mode::OnBackup) && key == self.cfg.key => {
                    self.chirp_maps.push(map);
                    // Persist the chirped availability over the client's
                    // (stale, pre-incumbent) report, or the next
                    // voluntary reassessment would move the network right
                    // back onto the incumbent's channel.
                    if let Some(entry) =
                        self.reports.iter_mut().find(|(id, _)| *id == frame.src)
                    {
                        entry.1.map = map;
                    } else {
                        self.reports.push((
                            frame.src,
                            NodeReport {
                                map,
                                airtime: self.airtime,
                            },
                        ));
                    }
                }
            _ => {}
        }
    }

    fn on_send_result(&mut self, frame: &Frame, success: bool, ctx: &mut Ctx) {
        if success {
            if let FrameKind::Data { bytes } = frame.kind {
                self.bytes_acked_since_eval += bytes as u64;
            }
        }
        if matches!(frame.kind, FrameKind::SwitchAnnounce { .. }) {
            match self.mode {
                Mode::SwitchingFromMain {
                    target,
                    announces_left,
                }
                | Mode::SwitchingFromBackup {
                    target,
                    announces_left,
                } => {
                    if announces_left <= 1 {
                        self.complete_switch(target, ctx);
                    } else {
                        let left = announces_left - 1;
                        self.mode = match self.mode {
                            Mode::SwitchingFromMain { .. } => Mode::SwitchingFromMain {
                                target,
                                announces_left: left,
                            },
                            _ => Mode::SwitchingFromBackup {
                                target,
                                announces_left: left,
                            },
                        };
                    }
                }
                _ => {}
            }
        }
        self.pump_downlink(ctx);
    }

    fn on_incumbent_change(&mut self, map: SpectrumMap, ctx: &mut Ctx) {
        if !self.cfg.adaptive {
            return;
        }
        match self.mode {
            Mode::Main | Mode::SwitchingFromMain { .. } => {
                if !map.admits(ctx.channel()) {
                    self.vacate_to_backup(ctx);
                } else if let Mode::SwitchingFromMain { target, .. } = self.mode {
                    if !map.admits(target) {
                        // The pending switch target was struck between
                        // selection and completion: abandon the move and
                        // stay on the (still admissible) current channel.
                        self.mode = Mode::Main;
                        self.assigner.set_current(Some(ctx.channel()));
                    }
                }
            }
            Mode::OnBackup | Mode::SwitchingFromBackup { .. } => {
                if let Mode::SwitchingFromBackup { target, .. } = self.mode {
                    if !map.admits(target) {
                        // Stale pending target (struck after BACKUP_DONE
                        // picked it): drop back to chirp collection and
                        // re-select with the fresh map.
                        self.mode = Mode::OnBackup;
                        ctx.set_timer(SimDuration::ZERO, keys::AP_CHIRP);
                        ctx.set_timer(self.cfg.chirp_collect, keys::BACKUP_DONE);
                    }
                }
                if !map.admits(ctx.channel()) {
                    // The backup itself got hit: move to the secondary.
                    if let Some(next) =
                        choose_secondary_backup(map, self.assigner.current(), ctx.channel())
                    {
                        ctx.clear_queue();
                        self.backup = Some(next);
                        ctx.set_channel(next);
                    }
                }
            }
        }
    }
}
