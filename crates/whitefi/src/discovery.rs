//! AP discovery: the non-SIFT baseline, L-SIFT, and J-SIFT (§4.2).
//!
//! A WhiteFi AP "may be using either a 5 MHz, 10 MHz, or 20 MHz channel
//! width … Given 30 UHF channels and 3 possible channel widths, there are
//! 84 combinations to consider" for a client that can only decode packets
//! sent at its own exact `(F, W)`. SIFT removes the need to try every
//! combination: one dwell on a single UHF channel detects any transmitter
//! whose band covers it *and* reveals the transmitter's width.
//!
//! Three algorithms, all generic over a [`ScanOracle`] so they run both
//! against the fast synthetic oracle (Figures 8 and 9 sweeps) and against
//! the full signal-level SIFT pipeline (integration tests):
//!
//! * [`baseline_discovery`] — tune to every admissible `(F, W)` and
//!   listen for a beacon (expected ≈ `NC·NW/2` dwells);
//! * [`l_sift_discovery`] — SIFT-scan the free UHF channels from low to
//!   high; the first hit pins the centre frequency exactly, because the
//!   first spanned channel scanned is the transmitter's lowest (expected
//!   ≈ `NC/2`);
//! * [`j_sift_discovery`] — Algorithm 1: staggered passes at stride 5,
//!   then 3, then 1 (skipping channels already scanned), followed by the
//!   centre-frequency "endgame" over the `F ± W/2` candidates (expected
//!   ≈ `(NC + 2^(NW−1) + (NW−1)/2) / NW`).
//!
//! All three retry from scratch if a pass completes without finding the
//! AP (SIFT false negatives "add delay … but the discovery algorithm will
//! continue to work as long as we can detect even a single packet").

use rand::Rng;
use serde::{Deserialize, Serialize};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{SpectrumMap, UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};

/// A scanning front-end the discovery algorithms drive.
///
/// Both operations cost one dwell; discovery time is
/// `dwells × dwell_duration`.
pub trait ScanOracle {
    /// SIFT-dwell on one UHF channel: returns the width of a WhiteFi
    /// transmitter whose band covers `ch`, if one was detected.
    fn sift_scan(&mut self, ch: UhfChannel) -> Option<Width>;

    /// Tune the transceiver to `(F, W)` and listen for a decodable
    /// beacon: true iff an AP operates on exactly that channel (and the
    /// beacon was caught).
    fn decode_scan(&mut self, ch: WfChannel) -> bool;

    /// Duration of one dwell (long enough to catch one 100 ms-period
    /// beacon).
    fn dwell(&self) -> SimDuration;
}

/// Result of a discovery run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryOutcome {
    /// The AP's channel.
    pub found: WfChannel,
    /// Total dwells spent (SIFT scans + decode attempts).
    pub scans: u32,
    /// Total time spent (`scans × dwell`).
    pub time: SimDuration,
}

fn outcome(found: WfChannel, scans: u32, dwell: SimDuration) -> DiscoveryOutcome {
    DiscoveryOutcome {
        found,
        scans,
        time: dwell * scans as u64,
    }
}

/// Upper bound on retry passes before giving up (only reachable when the
/// oracle misses persistently or no AP exists).
const MAX_PASSES: u32 = 64;

/// Non-SIFT baseline: sequentially tune to every admissible `(F, W)`
/// combination and listen for a beacon.
pub fn baseline_discovery<O: ScanOracle>(
    oracle: &mut O,
    map: SpectrumMap,
) -> Option<DiscoveryOutcome> {
    let candidates = map.available_channels();
    if candidates.is_empty() {
        return None;
    }
    let mut scans = 0;
    for _ in 0..MAX_PASSES {
        for &cand in &candidates {
            scans += 1;
            if oracle.decode_scan(cand) {
                return Some(outcome(cand, scans, oracle.dwell()));
            }
        }
    }
    None
}

/// L-SIFT: scan free UHF channels from the lowest frequency up; the first
/// detection pins the centre exactly (`Fc = Fs + E`), leaving a single
/// decode to associate.
pub fn l_sift_discovery<O: ScanOracle>(
    oracle: &mut O,
    map: SpectrumMap,
) -> Option<DiscoveryOutcome> {
    let free: Vec<UhfChannel> = map.free_channels().collect();
    if free.is_empty() {
        return None;
    }
    let mut scans = 0;
    for _ in 0..MAX_PASSES {
        for &ch in &free {
            scans += 1;
            if let Some(width) = oracle.sift_scan(ch) {
                // Scanning upward, this is the transmitter's lowest
                // spanned channel: centre = scanned + half-span.
                let center = ch.index() + width.half_span();
                if let Some(cand) = UhfChannel::new(center).and_then(|u| WfChannel::new(u, width)) {
                    scans += 1;
                    if oracle.decode_scan(cand) {
                        return Some(outcome(cand, scans, oracle.dwell()));
                    }
                }
            }
        }
    }
    None
}

/// J-SIFT (Algorithm 1): staggered SIFT passes at stride 5, 3, then 1
/// over not-yet-scanned free channels, then the centre-frequency endgame
/// over the `F ± W/2` candidates admitted by the spectrum map.
pub fn j_sift_discovery<O: ScanOracle>(
    oracle: &mut O,
    map: SpectrumMap,
) -> Option<DiscoveryOutcome> {
    let mut machine = JSiftMachine::new(map);
    loop {
        match machine.current()? {
            ScanStep::Sift(ch) => {
                let found = oracle.sift_scan(ch);
                machine.on_sift_result(found);
            }
            ScanStep::Decode(cand) => {
                if machine.on_decode_result(oracle.decode_scan(cand)) {
                    return Some(outcome(cand, machine.scans(), oracle.dwell()));
                }
            }
        }
    }
}

/// The next dwell an incremental J-SIFT run should perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStep {
    /// SIFT-dwell on this UHF channel.
    Sift(UhfChannel),
    /// Tune the transceiver to this candidate and listen for a beacon.
    Decode(WfChannel),
}

/// Incremental J-SIFT (Algorithm 1) as an explicit state machine: one
/// dwell per step, so it can run inside a live node (a client's scanner
/// performing one dwell per timer tick) as well as in the batch
/// [`j_sift_discovery`] wrapper.
#[derive(Debug, Clone)]
pub struct JSiftMachine {
    map: SpectrumMap,
    scanned: [bool; NUM_UHF_CHANNELS],
    width_idx: usize,
    cur: usize,
    endgame: Vec<WfChannel>,
    last_sift: Option<UhfChannel>,
    passes: u32,
    scans: u32,
}

impl JSiftMachine {
    /// A fresh run over `map`.
    pub fn new(map: SpectrumMap) -> Self {
        Self {
            map,
            scanned: [false; NUM_UHF_CHANNELS],
            width_idx: 0,
            cur: 0,
            endgame: Vec::new(),
            last_sift: None,
            passes: 0,
            scans: 0,
        }
    }

    /// Dwells performed so far.
    pub fn scans(&self) -> u32 {
        self.scans
    }

    /// The dwell to perform now. `None` when the map has no free channel
    /// or the retry budget is exhausted.
    pub fn current(&mut self) -> Option<ScanStep> {
        if let Some(&cand) = self.endgame.first() {
            self.scans += 1;
            return Some(ScanStep::Decode(cand));
        }
        loop {
            if self.width_idx >= Width::WIDEST_FIRST.len() {
                // Pass complete without success: restart (SIFT false
                // negatives only delay discovery).
                self.passes += 1;
                if self.passes >= MAX_PASSES || self.map.free_count() == 0 {
                    return None;
                }
                self.scanned = [false; NUM_UHF_CHANNELS];
                self.width_idx = 0;
                self.cur = 0;
            }
            let stride = Width::WIDEST_FIRST[self.width_idx].span();
            while self.cur < NUM_UHF_CHANNELS {
                let idx = self.cur;
                let ch = UhfChannel::from_index(idx);
                if !self.scanned[idx] && self.map.is_free(ch) {
                    // The caller must report this scan's outcome before
                    // asking for the next step; mark and emit.
                    self.scanned[idx] = true;
                    self.scans += 1;
                    self.cur += stride;
                    self.last_sift = Some(ch);
                    return Some(ScanStep::Sift(ch));
                }
                self.cur += stride;
            }
            self.width_idx += 1;
            self.cur = 0;
        }
    }

    /// Reports the outcome of the last [`ScanStep::Sift`] dwell.
    pub fn on_sift_result(&mut self, found: Option<Width>) {
        if let (Some(width), Some(ch)) = (found, self.last_sift.take()) {
            self.endgame = whitefi_phy::Scanner::candidate_centers(ch, width)
                .into_iter()
                .filter(|c| self.map.admits(*c))
                .collect();
        }
    }

    /// Reports the outcome of the last [`ScanStep::Decode`] dwell;
    /// returns `true` when the AP has been found (the decoded candidate
    /// is the AP's channel).
    pub fn on_decode_result(&mut self, success: bool) -> bool {
        if success {
            return true;
        }
        if !self.endgame.is_empty() {
            self.endgame.remove(0);
        }
        false
    }
}

/// Expected dwell count of the non-SIFT baseline over `nc` free channels
/// and `nw` widths: `nc·nw / 2`.
pub fn expected_scans_baseline(nc: usize, nw: usize) -> f64 {
    nc as f64 * nw as f64 / 2.0
}

/// Expected dwell count of L-SIFT: `nc / 2`.
pub fn expected_scans_l_sift(nc: usize) -> f64 {
    nc as f64 / 2.0
}

/// Expected dwell count of J-SIFT:
/// `(nc + 2^(nw−1) + (nw−1)/2) / nw` (§4.2.2; the derivation is elided in
/// the paper, but this form reproduces both stated consequences — ≈
/// `(NC + 4 + 1)/NW` for `NW = 3`, and the L-SIFT crossover at
/// `NC ≈ 10`).
// `nw` is the number of supported widths (3), so the usize→i32 cast for
// `powi` is exact.
#[allow(clippy::cast_possible_truncation)]
pub fn expected_scans_j_sift(nc: usize, nw: usize) -> f64 {
    (nc as f64 + 2f64.powi(nw as i32 - 1) + (nw as f64 - 1.0) / 2.0) / nw as f64
}

/// Burst-granularity SIFT matching for live in-simulation scans: finds a
/// data/ACK or beacon/CTS signature among scanner-visible bursts whose
/// band covers `scanned`, and returns the transmitter's width.
///
/// This is the same signature logic as [`whitefi_phy::Sift`] applied to
/// the medium's burst records directly (durations are exact there); the
/// sample-level path is exercised end-to-end in the integration tests.
pub fn sift_match_bursts(
    bursts: &[whitefi_phy::VisibleBurst],
    scanned: UhfChannel,
) -> Option<Width> {
    const TOL_NS: u64 = 5_000; // ≈ 5 SDR samples
    let mut visible: Vec<&whitefi_phy::VisibleBurst> = bursts
        .iter()
        .filter(|vb| vb.channel.contains(scanned))
        .collect();
    visible.sort_by_key(|vb| vb.burst.start);
    for pair in visible.windows(2) {
        let (a, b) = (&pair[0].burst, &pair[1].burst);
        if pair[0].channel != pair[1].channel {
            continue;
        }
        let a_end = a.start + a.duration;
        if b.start < a_end {
            continue;
        }
        let gap = b.start.since(a_end).as_nanos();
        for width in Width::ALL {
            let t = whitefi_phy::PhyTiming::for_width(width);
            let sifs = t.sifs().as_nanos();
            let ack = t.ack_duration().as_nanos();
            if gap.abs_diff(sifs) <= TOL_NS && b.duration.as_nanos().abs_diff(ack) <= TOL_NS {
                return Some(width);
            }
        }
    }
    None
}

/// A synthetic oracle for fast Monte-Carlo sweeps: one AP at a known
/// channel, optional per-dwell miss probability (SIFT false negatives in
/// noisy environments).
#[derive(Debug, Clone)]
pub struct SyntheticOracle<R: Rng> {
    /// The AP's true channel.
    pub ap: WfChannel,
    /// Probability that a dwell misses the AP even when visible.
    pub miss_prob: f64,
    /// Dwell duration (defaults to one beacon period, 100 ms).
    pub dwell: SimDuration,
    /// RNG for miss sampling.
    pub rng: R,
}

impl<R: Rng> SyntheticOracle<R> {
    /// An oracle with perfect detection and 100 ms dwells.
    pub fn new(ap: WfChannel, rng: R) -> Self {
        Self {
            ap,
            miss_prob: 0.0,
            dwell: SimDuration::from_millis(100),
            rng,
        }
    }

    fn missed(&mut self) -> bool {
        self.miss_prob > 0.0 && self.rng.gen_bool(self.miss_prob)
    }
}

impl<R: Rng> ScanOracle for SyntheticOracle<R> {
    fn sift_scan(&mut self, ch: UhfChannel) -> Option<Width> {
        if self.ap.contains(ch) && !self.missed() {
            Some(self.ap.width())
        } else {
            None
        }
    }

    fn decode_scan(&mut self, ch: WfChannel) -> bool {
        ch == self.ap && !self.missed()
    }

    fn dwell(&self) -> SimDuration {
        self.dwell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Every admissible AP placement is found by all three algorithms.
    #[test]
    fn all_algorithms_find_every_placement() {
        let map = SpectrumMap::all_free();
        for ap in map.available_channels() {
            for algo in [
                baseline_discovery::<SyntheticOracle<ChaCha8Rng>>,
                l_sift_discovery,
                j_sift_discovery,
            ] {
                let mut o = SyntheticOracle::new(ap, rng(1));
                let r = algo(&mut o, map).unwrap_or_else(|| panic!("missed AP at {ap}"));
                assert_eq!(r.found, ap);
                assert!(r.scans >= 1);
                assert_eq!(r.time, o.dwell * r.scans as u64);
            }
        }
    }

    /// Same, over the fragmented Building-5 map.
    #[test]
    fn fragmented_map_placements_found() {
        let map = SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]);
        for ap in map.available_channels() {
            for algo in [
                baseline_discovery::<SyntheticOracle<ChaCha8Rng>>,
                l_sift_discovery,
                j_sift_discovery,
            ] {
                let mut o = SyntheticOracle::new(ap, rng(2));
                assert_eq!(algo(&mut o, map).unwrap().found, ap);
            }
        }
    }

    #[test]
    fn no_free_spectrum_returns_none() {
        let map = SpectrumMap::all_occupied();
        let mut o = SyntheticOracle::new(WfChannel::from_parts(5, Width::W5), rng(3));
        assert!(baseline_discovery(&mut o, map).is_none());
        assert!(l_sift_discovery(&mut o, map).is_none());
        assert!(j_sift_discovery(&mut o, map).is_none());
    }

    /// Monte-Carlo means land near the closed forms on the full band.
    #[test]
    fn expected_scan_counts_match_analysis() {
        let map = SpectrumMap::all_free();
        let placements = map.available_channels();
        let mean = |algo: fn(
            &mut SyntheticOracle<ChaCha8Rng>,
            SpectrumMap,
        ) -> Option<DiscoveryOutcome>| {
            let total: u32 = placements
                .iter()
                .map(|&ap| {
                    let mut o = SyntheticOracle::new(ap, rng(4));
                    algo(&mut o, map).unwrap().scans
                })
                .sum();
            total as f64 / placements.len() as f64
        };
        let b = mean(baseline_discovery);
        let l = mean(l_sift_discovery);
        let j = mean(j_sift_discovery);
        // Baseline ≈ 42; allow slack (position distribution is not quite
        // what the paper's uniform approximation assumes).
        assert!(
            (b - expected_scans_baseline(30, 3)).abs() < 8.0,
            "baseline {b}"
        );
        // L-SIFT ≈ 15 (+1 decode endgame per run).
        assert!((l - expected_scans_l_sift(30)).abs() < 3.0, "l-sift {l}");
        // J-SIFT ≈ 11.7 plus its endgame decodes.
        assert!((j - expected_scans_j_sift(30, 3)).abs() < 4.0, "j-sift {j}");
        // Ordering on a wide-open band: J < L < baseline.
        assert!(j < l && l < b, "j {j} l {l} b {b}");
    }

    /// The paper's crossover: L-SIFT wins on narrow white spaces, J-SIFT
    /// on spans above ~10 channels.
    #[test]
    fn l_vs_j_crossover_near_ten_channels() {
        let mean_for_fragment = |len: usize,
                                 algo: fn(
            &mut SyntheticOracle<ChaCha8Rng>,
            SpectrumMap,
        ) -> Option<DiscoveryOutcome>| {
            let mut map = SpectrumMap::all_occupied();
            for i in 0..len {
                map.set_free(UhfChannel::from_index(i));
            }
            let placements = map.available_channels();
            let total: u32 = placements
                .iter()
                .map(|&ap| {
                    let mut o = SyntheticOracle::new(ap, rng(5));
                    algo(&mut o, map).unwrap().scans
                })
                .sum();
            total as f64 / placements.len() as f64
        };
        // Narrow fragment (4 channels): L-SIFT at least as good.
        assert!(
            mean_for_fragment(4, l_sift_discovery) <= mean_for_fragment(4, j_sift_discovery) + 0.5
        );
        // Wide fragment (20 channels): J-SIFT clearly better.
        assert!(mean_for_fragment(20, j_sift_discovery) < mean_for_fragment(20, l_sift_discovery));
    }

    #[test]
    fn closed_forms() {
        assert_eq!(expected_scans_baseline(30, 3), 45.0);
        assert_eq!(expected_scans_l_sift(30), 15.0);
        let j = expected_scans_j_sift(30, 3);
        assert!((j - 35.0 / 3.0).abs() < 1e-12);
        // Crossover with L-SIFT at NC = 10.
        let nc = 10;
        assert!((expected_scans_l_sift(nc) - expected_scans_j_sift(nc, 3)).abs() < 1e-12);
    }

    /// False negatives only delay discovery; they never break it.
    #[test]
    fn misses_add_delay_but_not_failure() {
        let map = SpectrumMap::all_free();
        let ap = WfChannel::from_parts(17, Width::W10);
        let mut clean = SyntheticOracle::new(ap, rng(6));
        let base = j_sift_discovery(&mut clean, map).unwrap();
        let mut noisy = SyntheticOracle::new(ap, rng(6));
        noisy.miss_prob = 0.5;
        let slow = j_sift_discovery(&mut noisy, map).unwrap();
        assert_eq!(slow.found, ap);
        assert!(
            slow.scans >= base.scans,
            "noisy {} clean {}",
            slow.scans,
            base.scans
        );

        let mut noisy = SyntheticOracle::new(ap, rng(7));
        noisy.miss_prob = 0.5;
        let l = l_sift_discovery(&mut noisy, map).unwrap();
        assert_eq!(l.found, ap);
    }

    /// J-SIFT's first pass alone finds wide-channel APs in at most 6
    /// dwells plus the endgame on an open band.
    #[test]
    fn j_sift_finds_20mhz_fast() {
        let map = SpectrumMap::all_free();
        for c in 2..28 {
            let ap = WfChannel::from_parts(c, Width::W20);
            let mut o = SyntheticOracle::new(ap, rng(8));
            let r = j_sift_discovery(&mut o, map).unwrap();
            // ≤ 6 stride-5 dwells + ≤ 5 endgame decodes.
            assert!(r.scans <= 11, "AP {ap}: {} scans", r.scans);
        }
    }
}
