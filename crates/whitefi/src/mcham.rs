//! The multichannel airtime metric (MCham) and the channel-selection
//! objective — Equations 1 and 2 of §4.1.
//!
//! For a candidate channel `(F, W)` and a node `n`,
//!
//! ```text
//! MCham_n(F, W) = (W / 5 MHz) · Π_{c ∈ (F,W)} ρ_n(c)
//! ```
//!
//! where `ρ_n(c) = max(1 − A_c, 1/(B_c + 1))` is the expected share of
//! UHF channel `c`. "Since ρ_n(c) represents the expected share of a UHF
//! channel c, the *product* of these shares across each UHF channel in
//! (F, W) gives the expected share for the entire channel" — the minimum
//! or maximum would underestimate, because traffic on a narrow channel
//! contends with traffic on an overlapping wider channel.
//!
//! The AP selects the channel maximizing `N·MCham_AP + Σ_n MCham_n`,
//! weighting its own (downlink) view by the number of clients.

use serde::{Deserialize, Serialize};
use whitefi_spectrum::{AirtimeVector, SpectrumMap, UhfChannel, WfChannel, NUM_UHF_CHANNELS};

/// One node's contribution to channel selection: its spectrum map and its
/// measured airtime vector (the contents of the client control message).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Incumbent occupancy observed at the node.
    pub map: SpectrumMap,
    /// Measured per-UHF-channel load at the node.
    pub airtime: AirtimeVector,
}

/// MCham of channel `channel` under the airtime measurements `airtime`
/// (Equation 2).
pub fn mcham(airtime: &AirtimeVector, channel: WfChannel) -> f64 {
    let product: f64 = channel.spanned().map(|c| airtime.rho(c)).product();
    channel.width().capacity_factor() * product
}

/// Precomputed per-UHF-channel shares `ρ(c)` for one airtime vector,
/// with log-share prefix sums so the Equation-2 product over any spanned
/// range costs O(1) instead of O(span).
///
/// Scoring all 84 `(F, W)` candidates touches each UHF channel up to 9
/// times through [`mcham`]; building this table once touches each
/// exactly once. `ρ(c) = max(1 − A_c, 1/(B_c + 1))` is strictly
/// positive, so the logs are always finite. Single-channel (5 MHz)
/// products use the stored share directly and stay bit-exact; wider
/// spans go through `exp(Σ ln ρ)` and may drift from the direct product
/// by a few ulps — far below the 1e-12 selection tie-break epsilon.
#[derive(Debug, Clone)]
pub struct RhoTable {
    rho: [f64; NUM_UHF_CHANNELS],
    log_prefix: [f64; NUM_UHF_CHANNELS + 1],
}

impl RhoTable {
    /// Builds the table from one node's airtime measurements.
    pub fn new(airtime: &AirtimeVector) -> Self {
        let mut rho = [0.0; NUM_UHF_CHANNELS];
        let mut log_prefix = [0.0; NUM_UHF_CHANNELS + 1];
        for (i, r) in rho.iter_mut().enumerate() {
            *r = airtime.rho(UhfChannel::from_index(i));
            log_prefix[i + 1] = log_prefix[i] + r.ln();
        }
        Self { rho, log_prefix }
    }

    /// The precomputed share of one UHF channel.
    pub fn rho(&self, c: UhfChannel) -> f64 {
        self.rho[c.index()]
    }

    /// MCham of `channel` (Equation 2) from the precomputed shares.
    pub fn mcham(&self, channel: WfChannel) -> f64 {
        let lo = channel.low_index();
        let hi = channel.high_index();
        let product = if lo == hi {
            self.rho[lo]
        } else {
            (self.log_prefix[hi + 1] - self.log_prefix[lo]).exp()
        };
        channel.width().capacity_factor() * product
    }
}

/// Scores every admissible `(F, W)` candidate (84 on 30 UHF channels)
/// against one airtime vector, sharing a single [`RhoTable`]. Equivalent
/// to calling [`mcham`] per candidate, at roughly a third of the
/// per-channel work.
pub fn evaluate_all(airtime: &AirtimeVector) -> Vec<(WfChannel, f64)> {
    let table = RhoTable::new(airtime);
    WfChannel::all().map(|c| (c, table.mcham(c))).collect()
}

/// How per-channel shares are combined into a whole-channel share.
///
/// The paper argues for the product: "simply taking the minimum or the
/// maximum across all channels, instead of the product, will be an
/// underestimate since the traffic on a narrower channel contends with
/// traffic on an overlapping wider channel." [`Combiner::Min`] and
/// [`Combiner::Max`] exist for the ablation experiment that demonstrates
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combiner {
    /// The paper's Equation 2: the product of per-channel shares.
    Product,
    /// Ablation: the minimum share across spanned channels.
    Min,
    /// Ablation: the maximum share across spanned channels.
    Max,
}

/// MCham with a configurable per-channel share combiner (ablation use).
pub fn mcham_with(combiner: Combiner, airtime: &AirtimeVector, channel: WfChannel) -> f64 {
    let shares = channel.spanned().map(|c| airtime.rho(c));
    let combined = match combiner {
        Combiner::Product => shares.product(),
        Combiner::Min => shares.fold(f64::INFINITY, f64::min),
        Combiner::Max => shares.fold(0.0, f64::max),
    };
    channel.width().capacity_factor() * combined
}

/// Client count (at least 1, so a clientless AP still weighs its own
/// share) as `f64`, exactly: network sizes are tiny relative to 2^53.
fn node_count_f64(clients: usize) -> f64 {
    // lint:allow(cast, client counts are far below 2^53, conversion is exact)
    clients.max(1) as f64
}

/// The channel-selection objective. The paper optimizes aggregate
/// throughput and notes that "other metrics (such as metrics including
/// fairness conditions) can easily be implemented instead".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Objective {
    /// `N·MCham_AP + Σ_n MCham_n` — the paper's default.
    #[default]
    Aggregate,
    /// `Σ log(MCham)` over the AP and every client — proportionally fair
    /// across nodes' expected shares.
    ProportionalFair,
    /// `min(MCham)` over the AP and every client — max-min fairness: no
    /// node is left on a channel that is terrible *for it*.
    MaxMin,
}

/// Scores one candidate channel under the given objective.
pub fn objective_score(
    objective: Objective,
    ap: &NodeReport,
    clients: &[NodeReport],
    channel: WfChannel,
) -> f64 {
    match objective {
        Objective::Aggregate => selection_score(ap, clients, channel),
        Objective::ProportionalFair => {
            let mut sum = mcham(&ap.airtime, channel).max(1e-9).ln();
            for c in clients {
                sum += mcham(&c.airtime, channel).max(1e-9).ln();
            }
            sum
        }
        Objective::MaxMin => clients
            .iter()
            .map(|c| mcham(&c.airtime, channel))
            .fold(mcham(&ap.airtime, channel), f64::min),
    }
}

/// [`select_channel`] under an arbitrary objective.
///
/// Builds one [`RhoTable`] per node up front, then scores every
/// candidate from the tables, so a selection over N nodes and 84
/// candidates does N·30 share computations instead of N·84·span.
pub fn select_channel_with(
    objective: Objective,
    ap: &NodeReport,
    clients: &[NodeReport],
) -> Option<(WfChannel, f64)> {
    let combined =
        SpectrumMap::union_all(std::iter::once(ap.map).chain(clients.iter().map(|c| c.map)));
    let ap_table = RhoTable::new(&ap.airtime);
    let client_tables: Vec<RhoTable> = clients.iter().map(|c| RhoTable::new(&c.airtime)).collect();
    let n = node_count_f64(clients.len());
    let mut best: Option<(WfChannel, f64)> = None;
    for cand in combined.available_channels() {
        let ap_m = ap_table.mcham(cand);
        let score = match objective {
            Objective::Aggregate => {
                n * ap_m + client_tables.iter().map(|t| t.mcham(cand)).sum::<f64>()
            }
            Objective::ProportionalFair => {
                let mut sum = ap_m.max(1e-9).ln();
                for t in &client_tables {
                    sum += t.mcham(cand).max(1e-9).ln();
                }
                sum
            }
            Objective::MaxMin => client_tables
                .iter()
                .map(|t| t.mcham(cand))
                .fold(ap_m, f64::min),
        };
        let better = match best {
            None => true,
            Some((b, s)) => {
                score > s + 1e-12
                    || ((score - s).abs() <= 1e-12
                        && (cand.width() > b.width()
                            || (cand.width() == b.width()
                                && cand.center().index() < b.center().index())))
            }
        };
        if better {
            best = Some((cand, score));
        }
    }
    best
}

/// The AP's selection objective for one candidate channel:
/// `N·MCham_AP + Σ_n MCham_n` (§4.1, "Channel selection").
pub fn selection_score(ap: &NodeReport, clients: &[NodeReport], channel: WfChannel) -> f64 {
    let n = node_count_f64(clients.len());
    n * mcham(&ap.airtime, channel)
        + clients
            .iter()
            .map(|c| mcham(&c.airtime, channel))
            .sum::<f64>()
}

/// Runs the full §4.1 probing step: combine the maps (bitwise OR),
/// enumerate every admissible `(F, W)`, score each, and return the best
/// channel with its score. Returns `None` when no channel is free at all
/// nodes.
///
/// Ties break deterministically toward the wider, lower-frequency
/// channel, so repeated evaluations of an unchanged environment pick the
/// same channel.
pub fn select_channel(ap: &NodeReport, clients: &[NodeReport]) -> Option<(WfChannel, f64)> {
    select_channel_with(Objective::Aggregate, ap, clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_spectrum::{ChannelLoad, UhfChannel, Width};

    fn ch(center: usize, w: Width) -> WfChannel {
        WfChannel::from_parts(center, w)
    }

    #[test]
    fn paper_example_1_empty_spectrum() {
        // "If there is no background interference … MCham simply evaluates
        // to the optimal channel capacity: 1 for W=5, 2 for W=10, 4 for
        // W=20."
        let idle = AirtimeVector::idle();
        assert_eq!(mcham(&idle, ch(10, Width::W5)), 1.0);
        assert_eq!(mcham(&idle, ch(10, Width::W10)), 2.0);
        assert_eq!(mcham(&idle, ch(10, Width::W20)), 4.0);
    }

    #[test]
    fn paper_example_2() {
        // "Out of the 5 UHF channels spanned by (F, 20 MHz), three have no
        // background interference, one has 1 AP and airtime 0.9, and one
        // has 1 AP with airtime 0.2: MCham = 4 · 0.5 · 0.8 = 1.6."
        let mut airtime = AirtimeVector::idle();
        airtime.set_load(UhfChannel::from_index(8), ChannelLoad::new(0.9, 1));
        airtime.set_load(UhfChannel::from_index(12), ChannelLoad::new(0.2, 1));
        let v = mcham(&airtime, ch(10, Width::W20));
        assert!((v - 1.6).abs() < 1e-12, "MCham {v}");
    }

    #[test]
    fn product_not_min_or_max() {
        // Two loaded channels must compound, not take min/max.
        let mut airtime = AirtimeVector::idle();
        airtime.set_load(UhfChannel::from_index(9), ChannelLoad::new(0.5, 1));
        airtime.set_load(UhfChannel::from_index(11), ChannelLoad::new(0.5, 1));
        let v = mcham(&airtime, ch(10, Width::W20));
        // rho = max(0.5, 0.5) = 0.5 on both loaded channels; min or max
        // over rho would have given 4*0.5 = 2.0 instead.
        assert!((v - 4.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn background_on_one_channel_prefers_narrow() {
        // Heavy background on one of the outer channels of a 20 MHz span
        // makes the inner 10 MHz/5 MHz channels win.
        let mut airtime = AirtimeVector::idle();
        // Two APs saturating channel 8: rho = max(0.05, 1/3) = 1/3.
        airtime.set_load(UhfChannel::from_index(8), ChannelLoad::new(0.95, 2));
        let w20 = mcham(&airtime, ch(10, Width::W20));
        let w10 = mcham(&airtime, ch(10, Width::W10)); // spans 9..=11, clean
        assert!(w10 > w20, "w10 {w10} w20 {w20}");
    }

    #[test]
    fn selection_objective_weights_ap_by_client_count() {
        let mut ap_air = AirtimeVector::idle();
        ap_air.set_load(UhfChannel::from_index(5), ChannelLoad::new(0.5, 1));
        let ap = NodeReport {
            map: SpectrumMap::all_free(),
            airtime: ap_air,
        };
        let clients = vec![NodeReport::default(); 3];
        let c = ch(5, Width::W5);
        // AP's rho = max(0.5, 0.5) = 0.5: 3 · 0.5 + 3 · 1.0 = 4.5.
        let s = selection_score(&ap, &clients, c);
        assert!((s - 4.5).abs() < 1e-12, "{s}");
    }

    #[test]
    fn select_channel_respects_client_maps() {
        // The widest fragment is blocked at one client; selection must
        // avoid it even though the AP sees it free.
        let ap = NodeReport::default();
        // Client cannot use channels 0..=9.
        let blocked = NodeReport {
            map: SpectrumMap::from_occupied(0..10),
            ..NodeReport::default()
        };
        let (best, _) = select_channel(&ap, &[blocked]).unwrap();
        assert!(best.low_index() >= 10, "picked {best}");
    }

    #[test]
    fn select_channel_none_when_fully_blocked() {
        let ap = NodeReport {
            map: SpectrumMap::from_occupied(0..15),
            airtime: AirtimeVector::idle(),
        };
        let client = NodeReport {
            map: SpectrumMap::from_occupied(15..30),
            airtime: AirtimeVector::idle(),
        };
        assert!(select_channel(&ap, &[client]).is_none());
    }

    #[test]
    fn select_prefers_widest_clean_channel() {
        let ap = NodeReport::default();
        let (best, score) = select_channel(&ap, &[]).unwrap();
        assert_eq!(best.width(), Width::W20);
        assert!((score - 4.0).abs() < 1e-12);
        // Deterministic tie-break: lowest admissible centre.
        assert_eq!(best.center().index(), 2);
    }

    #[test]
    fn select_is_deterministic() {
        let ap = NodeReport {
            map: SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]),
            airtime: AirtimeVector::idle(),
        };
        let a = select_channel(&ap, &[]);
        let b = select_channel(&ap, &[]);
        assert_eq!(a, b);
        // The Building-5 map's best clean channel is the 20 MHz fragment.
        let (best, _) = a.unwrap();
        assert_eq!(best.width(), Width::W20);
        assert_eq!(best.center().index(), 7);
    }

    #[test]
    fn combiner_ablation_orderings() {
        // Min underestimates and max overestimates relative to the
        // product whenever more than one spanned channel is loaded.
        let mut airtime = AirtimeVector::idle();
        airtime.set_load(UhfChannel::from_index(9), ChannelLoad::new(0.6, 1));
        airtime.set_load(UhfChannel::from_index(11), ChannelLoad::new(0.4, 1));
        let c = ch(10, Width::W20);
        let p = mcham_with(Combiner::Product, &airtime, c);
        let lo = mcham_with(Combiner::Min, &airtime, c);
        let hi = mcham_with(Combiner::Max, &airtime, c);
        assert!(p < lo, "product {p} must be below min-combined {lo}");
        assert!(lo < hi, "min {lo} must be below max {hi}");
        // Product matches Equation 2 exactly.
        assert!((p - mcham(&airtime, c)).abs() < 1e-12);
    }

    #[test]
    fn maxmin_objective_protects_the_worst_client() {
        // Client 0 sees heavy load on the low fragment; client 1 on the
        // high one. Aggregate may pick either; max-min must pick the
        // channel whose *worst* client share is largest.
        let mk = |loads: &[(usize, f64)]| {
            let mut a = AirtimeVector::idle();
            for &(i, busy) in loads {
                a.set_load(UhfChannel::from_index(i), ChannelLoad::new(busy, 2));
            }
            NodeReport {
                map: SpectrumMap::all_free(),
                airtime: a,
            }
        };
        let ap = NodeReport::default();
        // Client 0: low band crushed; client 1: mild load high band.
        let c0 = mk(&[(2, 1.0), (3, 1.0), (4, 1.0), (5, 1.0), (6, 1.0)]);
        let c1 = mk(&[(20, 0.3)]);
        let (best, score) = select_channel_with(Objective::MaxMin, &ap, &[c0, c1]).unwrap();
        // The max-min winner avoids client 0's crushed band entirely.
        assert!(best.low_index() > 6, "picked {best}");
        assert!(score > 0.0);
    }

    #[test]
    fn proportional_fair_between_aggregate_and_maxmin() {
        let ap = NodeReport::default();
        let clients = vec![NodeReport::default(); 2];
        for obj in [
            Objective::Aggregate,
            Objective::ProportionalFair,
            Objective::MaxMin,
        ] {
            let (best, _) = select_channel_with(obj, &ap, &clients).unwrap();
            // On clean spectrum all objectives agree: widest channel.
            assert_eq!(best.width(), Width::W20, "{obj:?}");
        }
    }

    #[test]
    fn default_objective_matches_select_channel() {
        let ap = NodeReport {
            map: SpectrumMap::from_free([5, 6, 7, 8, 9, 17]),
            airtime: AirtimeVector::idle(),
        };
        assert_eq!(
            select_channel(&ap, &[]),
            select_channel_with(Objective::Aggregate, &ap, &[])
        );
    }

    #[test]
    fn rho_table_matches_direct_mcham() {
        let mut airtime = AirtimeVector::idle();
        airtime.set_load(UhfChannel::from_index(8), ChannelLoad::new(0.9, 1));
        airtime.set_load(UhfChannel::from_index(12), ChannelLoad::new(0.2, 3));
        airtime.set_load(UhfChannel::from_index(13), ChannelLoad::new(0.7, 1));
        let table = RhoTable::new(&airtime);
        for c in WfChannel::all() {
            let slow = mcham(&airtime, c);
            let fast = table.mcham(c);
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "{c}: {fast} vs {slow}"
            );
        }
        // Single-channel (5 MHz) entries are bit-exact.
        for i in 0..NUM_UHF_CHANNELS {
            let c5 = ch(i, Width::W5);
            assert_eq!(table.mcham(c5), mcham(&airtime, c5));
            assert_eq!(
                table.rho(UhfChannel::from_index(i)),
                airtime.rho(UhfChannel::from_index(i))
            );
        }
    }

    #[test]
    fn evaluate_all_covers_every_candidate_exactly_on_idle_spectrum() {
        let airtime = AirtimeVector::idle();
        let all = evaluate_all(&airtime);
        assert_eq!(all.len(), WfChannel::all().count());
        for (c, v) in &all {
            // ln 1 = 0 and exp 0 = 1 are exact, so idle spectrum matches
            // the direct product bit-for-bit.
            assert_eq!(*v, mcham(&airtime, *c), "{c}");
        }
    }

    #[test]
    fn saturated_but_shared_beats_nothing() {
        // A fully-busy channel with one AP still yields ρ = 0.5 per
        // channel: contending is better than silence.
        let mut airtime = AirtimeVector::idle();
        for i in 0..30 {
            airtime.set_load(UhfChannel::from_index(i), ChannelLoad::new(1.0, 1));
        }
        let v = mcham(&airtime, ch(10, Width::W5));
        assert!((v - 0.5).abs() < 1e-12);
    }
}
