//! The chirping disconnection protocol (§4.3).
//!
//! When a primary user appears on the main channel, the node that detects
//! it vacates immediately and signals on the AP's advertised 5 MHz
//! **backup channel** — never on the incumbent's channel, because even a
//! single packet audibly degrades a wireless-mic recording (§2.3). The AP
//! detects chirps with SIFT on its secondary (scanner) radio, "in the
//! background", and only then moves its main radio to the backup channel
//! to decode them.
//!
//! This module provides the pieces shared by the AP and client state
//! machines:
//!
//! * backup-channel selection (a free 5 MHz channel disjoint from the
//!   main channel, with deterministic fallback to a *secondary* backup
//!   when the advertised one is itself hit by an incumbent);
//! * SIFT-based chirp detection over captured amplitude traces;
//! * the optional time-domain identity encoding: "we can encode some
//!   amount of information in the time domain, such as the client's SSID,
//!   for example by setting the length of the chirp packet. (In effect,
//!   this uses SIFT to implement a low-bitrate OOK-modulated channel.)"

use whitefi_phy::synth::duration_to_samples;
use whitefi_phy::{PhyTiming, Sift};

pub use whitefi_phy::timing::chirp_bytes_for_slot;
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

/// All candidate backup channels under `map`: free 5 MHz channels that do
/// not overlap `main` (chirping must not contend with the network's own
/// data traffic channel selection).
pub fn backup_candidates(map: SpectrumMap, main: Option<WfChannel>) -> Vec<WfChannel> {
    map.available_channels_of_width(Width::W5)
        .into_iter()
        .filter(|c| main.is_none_or(|m| !c.overlaps(m)))
        .collect()
}

/// Deterministically chooses a backup channel: the lowest-frequency
/// candidate. Returns `None` when no 5 MHz channel is free outside the
/// main channel.
pub fn choose_backup(map: SpectrumMap, main: Option<WfChannel>) -> Option<WfChannel> {
    backup_candidates(map, main).into_iter().next()
}

/// When the advertised backup is blocked, "an arbitrary available channel
/// is selected as a secondary backup": the lowest candidate excluding the
/// failed one.
pub fn choose_secondary_backup(
    map: SpectrumMap,
    main: Option<WfChannel>,
    failed: WfChannel,
) -> Option<WfChannel> {
    backup_candidates(map, main)
        .into_iter()
        .find(|&c| c != failed)
}

/// Chirp detection over SIFT burst extraction.
#[derive(Debug, Clone, Default)]
pub struct ChirpDetector {
    sift: Sift,
}

/// A chirp found in a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChirpDetection {
    /// Sample index where the chirp starts.
    pub start: usize,
    /// The identity slot decoded from the chirp length, if the length
    /// matches an encoded slot.
    pub slot: Option<u8>,
}

impl ChirpDetector {
    /// A detector with default SIFT parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Expected on-air samples of a slot-`slot` chirp on the 5 MHz backup
    /// channel.
    pub fn expected_samples(slot: u8) -> f64 {
        let d = PhyTiming::for_width(Width::W5).frame_duration(chirp_bytes_for_slot(slot));
        duration_to_samples(d)
    }

    /// Scans a backup-channel capture for chirps: lone bursts whose
    /// length matches some chirp slot (±tolerance). Data/ACK exchanges
    /// and other control frames do not match any slot length.
    pub fn detect(&self, samples: &[f32]) -> Vec<ChirpDetection> {
        let tol = self.sift.config.match_tolerance;
        self.sift
            .extract_bursts(samples)
            .into_iter()
            .filter_map(|b| {
                let slot = (0u8..=15)
                    .find(|&s| (b.len as f64 - Self::expected_samples(s)).abs() <= tol)?;
                Some(ChirpDetection {
                    start: b.start,
                    slot: Some(slot),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use whitefi_phy::synth::{Burst, BurstKind};
    use whitefi_phy::{SimDuration, SimTime, Synthesizer};

    #[test]
    fn backup_is_free_5mhz_disjoint_from_main() {
        let map = SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]);
        let main = WfChannel::from_parts(7, Width::W20); // spans 5..=9
        let b = choose_backup(map, Some(main)).unwrap();
        assert_eq!(b.width(), Width::W5);
        assert!(!b.overlaps(main));
        assert!(map.admits(b));
        assert_eq!(b.center().index(), 12);
    }

    #[test]
    fn backup_none_when_main_covers_all_free() {
        let map = SpectrumMap::from_free([5, 6, 7, 8, 9]);
        let main = WfChannel::from_parts(7, Width::W20);
        assert!(choose_backup(map, Some(main)).is_none());
    }

    #[test]
    fn secondary_backup_skips_failed() {
        let map = SpectrumMap::from_free([12, 13, 14, 17, 26]);
        let primary = choose_backup(map, None).unwrap();
        let secondary = choose_secondary_backup(map, None, primary).unwrap();
        assert_ne!(secondary, primary);
        assert!(map.admits(secondary));
    }

    #[test]
    fn slot_lengths_are_separated_beyond_tolerance() {
        for s in 0..15u8 {
            let d = ChirpDetector::expected_samples(s + 1) - ChirpDetector::expected_samples(s);
            assert!(d > 2.0 * 4.0, "slots {s},{} too close: {d}", s + 1);
        }
    }

    fn chirp_burst(slot: u8, start_us: u64) -> Burst {
        Burst {
            start: SimTime::from_micros(start_us),
            duration: PhyTiming::for_width(Width::W5).frame_duration(chirp_bytes_for_slot(slot)),
            width: Width::W5,
            amplitude: 1000.0,
            kind: BurstKind::Chirp,
        }
    }

    #[test]
    fn detects_chirp_and_decodes_slot() {
        let synth = Synthesizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for slot in [0u8, 3, 7, 15] {
            let trace = synth.synthesize(
                &[chirp_burst(slot, 500)],
                SimDuration::from_millis(8),
                &mut rng,
            );
            let found = ChirpDetector::new().detect(&trace);
            assert_eq!(found.len(), 1, "slot {slot}");
            assert_eq!(found[0].slot, Some(slot));
        }
    }

    #[test]
    fn multiple_chirps_from_different_clients() {
        let synth = Synthesizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let bursts = [
            chirp_burst(1, 500),
            chirp_burst(4, 6_000),
            chirp_burst(1, 12_000),
        ];
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(20), &mut rng);
        let found = ChirpDetector::new().detect(&trace);
        assert_eq!(found.len(), 3);
        let slots: Vec<_> = found.iter().map(|c| c.slot.unwrap()).collect();
        assert_eq!(slots, vec![1, 4, 1]);
    }

    #[test]
    fn data_traffic_not_mistaken_for_chirps() {
        // A large data frame and its ACK on the backup channel (another
        // AP's main channel may overlap the backup — §4.3 allows this)
        // must not register as chirps.
        let synth = Synthesizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ex = whitefi_phy::synth::data_ack_exchange(
            SimTime::from_micros(500),
            Width::W5,
            1000,
            1000.0,
        );
        let trace = synth.synthesize(&ex, SimDuration::from_millis(15), &mut rng);
        let found = ChirpDetector::new().detect(&trace);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn pure_noise_has_no_chirps() {
        let synth = Synthesizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trace = synth.synthesize(&[], SimDuration::from_millis(50), &mut rng);
        assert!(ChirpDetector::new().detect(&trace).is_empty());
    }
}
