//! Always-on protocol-invariant oracles, fed passively from the event
//! core (DESIGN.md §10).
//!
//! An [`OracleBank`] attaches to a [`Simulator`] as a
//! [`whitefi_mac::SimObserver`] and checks, on every foreground
//! (SSID-member) transmission, the four properties the paper's safety
//! story rests on:
//!
//! 1. **Incumbent safety** (§4.3, Fig. 14–16): no member transmission
//!    starts strictly after an incumbent's detection deadline while the
//!    incumbent is on the air, on any UHF channel the transmission
//!    spans. Static TV occupancy is known from t = 0, so any overlap is
//!    a violation; a mic interval's deadline is its onset plus the
//!    node's detection delay (plus any faulted detection stretch).
//! 2. **Backup liveness** (§4.3): a disconnected client (first chirp)
//!    reassociates (next unicast to the AP) within the liveness bound,
//!    or the miss is explained by an injected fault.
//! 3. **Single-channel occupancy**: the network's members occupy one
//!    `(F, W)` channel, except within a grace period of an observable
//!    transition (a chirp or switch announcement, a retune, an
//!    observed-map change).
//! 4. **Airtime conservation**: the oracle's independent per-UHF busy
//!    accounting (union of overlapping transmissions) equals the
//!    medium's counters exactly and never exceeds wall-clock time.
//!
//! Every [`OracleReport`] field — violations, the checked-transmission
//! count, the foreground trace digest — derives from member
//! transmissions only, so reports are invariant under background
//! pruning (DESIGN.md §9) and the pruned == unpruned equality tests
//! extend to them unchanged. Observers never influence scheduling:
//! a run with an attached bank is event-for-event identical to one
//! without.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use whitefi_mac::sim::SCANNER_SENSITIVITY_DBM;
use whitefi_mac::{FaultEventKind, FrameKind, NodeId, SimObserver, Simulator, Transmission};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{IncumbentSet, SpectrumMap, UhfChannel, WfChannel, NUM_UHF_CHANNELS};

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// A member transmission overlapped a detected incumbent after its
    /// detection deadline.
    IncumbentSafety,
    /// A disconnected client missed the reassociation bound with no
    /// fault to explain it.
    BackupLiveness,
    /// Members transmitted on more than one channel outside the
    /// transition grace period.
    ChannelOccupancy,
    /// The medium's busy accounting disagrees with the oracle's
    /// independent recomputation, or exceeds wall-clock time.
    AirtimeConservation,
}

/// One structured invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The broken invariant.
    pub kind: OracleKind,
    /// When the violation was detected.
    pub time: SimTime,
    /// The offending node, when attributable.
    pub node: Option<NodeId>,
    /// Human-readable specifics.
    pub detail: String,
}

/// The oracles' verdict on one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// Every violation, in detection order.
    pub violations: Vec<Violation>,
    /// Member transmissions checked.
    pub checked_tx: u64,
    /// Liveness misses explained by injected faults (documented
    /// outcomes, not protocol bugs).
    pub explained_liveness: u64,
    /// Split-channel occupancy episodes explained by injected faults —
    /// e.g. a dropped SwitchAnnounce leaving a client behind until its
    /// watchdog recovers (documented outcomes, not protocol bugs).
    pub explained_occupancy: u64,
    /// FNV-1a digest of the foreground transmission trace (member
    /// transmissions only, so pruning cannot change it) — the
    /// byte-identical determinism fingerprint.
    pub trace_digest: u64,
}

impl OracleReport {
    /// Whether every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Tunables of the oracle bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Disconnection → reassociation bound. The protocol's own budget —
    /// client watchdog (600 ms) + a full backup-scan period (3 s) +
    /// chirp collection (300 ms) + switch fallback — sums well under
    /// 5 s; 10 s leaves headroom for contention without masking hangs.
    pub liveness_bound: SimDuration,
    /// How long after an observable transition (control frame, retune,
    /// observed-map change) split-channel operation is tolerated.
    pub transition_grace: SimDuration,
    /// Whether the run is the adaptive protocol (true) or a pinned
    /// baseline (false) — routes the global violation counters.
    pub adaptive: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            liveness_bound: SimDuration::from_secs(10),
            transition_grace: SimDuration::from_secs(1),
            adaptive: true,
        }
    }
}

/// One mic activity interval, precompiled against a member's detection
/// latency.
#[derive(Debug, Clone, Copy)]
struct MicWindow {
    channel: UhfChannel,
    /// Onset + detection delay + faulted extra: transmissions starting
    /// strictly later, while the mic is still on, violate safety.
    deadline_ns: u64,
    /// Mic off time (exclusive).
    off_ns: u64,
}

/// Per-member environment and liveness state.
#[derive(Debug)]
struct MemberEnv {
    /// Scenario-stable identity folded into digests and violation
    /// details. Equal to the sim-local node id for ordinary runs; a
    /// shard-local simulator registers members under their global ids
    /// so reports compare byte-identically across shardings.
    stable: NodeId,
    is_ap: bool,
    /// Statically occupied channels (detectable TV stations): known to
    /// the member from t = 0, so overlap is violating at any time.
    static_occupied: SpectrumMap,
    mic_windows: Vec<MicWindow>,
    /// Open liveness window: time of the first unanswered chirp.
    live_open: Option<SimTime>,
    /// Channel of the member's most recent transmission start.
    last_tx_channel: Option<WfChannel>,
    last_tx_time: SimTime,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_word(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn kind_tag(kind: &FrameKind) -> u64 {
    match kind {
        FrameKind::Data { .. } => 0,
        FrameKind::Report { .. } => 1,
        FrameKind::Beacon { .. } => 2,
        FrameKind::SwitchAnnounce { .. } => 3,
        FrameKind::Chirp { .. } => 4,
        FrameKind::Ack => 5,
        FrameKind::Cts => 6,
    }
}

fn width_tag(ch: WfChannel) -> u64 {
    match ch.width() {
        whitefi_spectrum::Width::W5 => 0,
        whitefi_spectrum::Width::W10 => 1,
        whitefi_spectrum::Width::W20 => 2,
    }
}

struct Inner {
    cfg: OracleConfig,
    /// Member environments, indexed by node id (None for background).
    members: Vec<Option<MemberEnv>>,
    violations: Vec<Violation>,
    checked_tx: u64,
    digest: u64,
    /// Member transmissions currently on the air.
    fg_active: Vec<(u64, NodeId, WfChannel)>,
    /// Most recent observable transition.
    last_marker: SimTime,
    /// Liveness misses awaiting fault correlation at finish.
    pending_liveness: Vec<(NodeId, SimTime, SimTime)>,
    /// Occupancy splits awaiting fault correlation at finish.
    pending_occupancy: Vec<Violation>,
    /// Liveness misses explained by injected faults.
    explained: u64,
    /// Occupancy splits explained by injected faults.
    explained_occ: u64,
    /// Independent per-UHF busy recomputation (same union-of-overlaps
    /// algorithm as the medium, fed from the observer hooks).
    busy_ns: [u64; NUM_UHF_CHANNELS],
    active_count: [u32; NUM_UHF_CHANNELS],
    last_change_ns: [u64; NUM_UHF_CHANNELS],
}

impl Inner {
    fn accrue(&mut self, u: UhfChannel, now_ns: u64) {
        let i = u.index();
        if self.active_count[i] > 0 {
            self.busy_ns[i] += now_ns - self.last_change_ns[i];
        }
        self.last_change_ns[i] = now_ns;
    }

    fn is_member(&self, n: NodeId) -> bool {
        self.members.get(n).is_some_and(|m| m.is_some())
    }

    /// The scenario-stable identity of a node: a member's registered
    /// stable id, the raw sim id otherwise.
    fn stable_of(&self, n: NodeId) -> NodeId {
        self.members
            .get(n)
            .and_then(|m| m.as_ref())
            .map_or(n, |e| e.stable)
    }

    fn violate(&mut self, kind: OracleKind, time: SimTime, node: Option<NodeId>, detail: String) {
        self.violations.push(Violation {
            kind,
            time,
            node,
            detail,
        });
    }

    fn tx_start(&mut self, now: SimTime, tx: &Transmission) {
        let now_ns = now.as_nanos();
        for u in tx.channel.spanned() {
            self.accrue(u, now_ns);
            self.active_count[u.index()] += 1;
        }
        if !self.is_member(tx.src) {
            return;
        }
        let src_stable = self.stable_of(tx.src);
        self.checked_tx += 1;
        let grace = self.cfg.transition_grace;
        let bound = self.cfg.liveness_bound;

        // A chirp or switch announcement is itself an observable
        // transition: refresh the marker before judging occupancy.
        if matches!(
            tx.frame.kind,
            FrameKind::Chirp { .. } | FrameKind::SwitchAnnounce { .. }
        ) {
            self.last_marker = now;
        }

        // --- Single-channel occupancy --------------------------------
        // Split operation is violating only when sustained: another
        // member transmitted on a different channel within the grace
        // window (on the air now, or recently), and no observable
        // transition happened within that window either.
        if now.saturating_since(self.last_marker) > grace {
            let split_live = self
                .fg_active
                .iter()
                .any(|&(_, n, c)| n != tx.src && c != tx.channel);
            let split_recent = self.members.iter().enumerate().any(|(n, m)| {
                m.as_ref().is_some_and(|e| {
                    n != tx.src
                        && e.last_tx_channel.is_some_and(|c| c != tx.channel)
                        && now.saturating_since(e.last_tx_time) <= grace
                })
            });
            if split_live || split_recent {
                // Judged at finish: a split sustained past the grace
                // window is a violation only when no injected fault
                // (e.g. a dropped SwitchAnnounce) explains the members
                // disagreeing about where the network lives — the same
                // correlation the liveness oracle applies.
                self.pending_occupancy.push(Violation {
                    kind: OracleKind::ChannelOccupancy,
                    time: now,
                    node: Some(src_stable),
                    detail: format!(
                        "member {} on {} while the network occupies another channel, \
                         >{:?} after the last transition",
                        src_stable, tx.channel, grace
                    ),
                });
            }
        }

        // --- Incumbent safety ----------------------------------------
        let Some(env) = self.members[tx.src].as_ref() else {
            return; // unreachable: `is_member` checked on entry
        };
        let static_hit = tx
            .channel
            .spanned()
            .find(|&u| env.static_occupied.is_occupied(u));
        let mic_hit = env
            .mic_windows
            .iter()
            .find(|w| tx.channel.contains(w.channel) && now_ns > w.deadline_ns && now_ns < w.off_ns)
            .copied();
        if let Some(u) = static_hit {
            self.violate(
                OracleKind::IncumbentSafety,
                now,
                Some(src_stable),
                format!(
                    "member {} transmitted on {} over statically occupied UHF {}",
                    src_stable,
                    tx.channel,
                    u.index()
                ),
            );
        }
        if let Some(w) = mic_hit {
            self.violate(
                OracleKind::IncumbentSafety,
                now,
                Some(src_stable),
                format!(
                    "member {} transmitted on {} over an active mic on UHF {} \
                     ({} ns past its detection deadline)",
                    src_stable,
                    tx.channel,
                    w.channel.index(),
                    now_ns - w.deadline_ns
                ),
            );
        }

        // --- Backup liveness -----------------------------------------
        let Some(env) = self.members[tx.src].as_mut() else {
            return; // unreachable: `is_member` checked on entry
        };
        if !env.is_ap {
            match tx.frame.kind {
                FrameKind::Chirp { .. } => {
                    env.live_open.get_or_insert(now);
                }
                _ if tx.frame.dst.is_some() => {
                    // Any unicast back to the network closes the window
                    // (data, report, or an ACK of AP traffic — all
                    // require a shared channel again).
                    if let Some(open) = env.live_open.take() {
                        if now.since(open) > bound {
                            self.pending_liveness.push((tx.src, open, now));
                        }
                    }
                }
                _ => {}
            }
        }

        let Some(env) = self.members[tx.src].as_mut() else {
            return; // unreachable: `is_member` checked on entry
        };
        env.last_tx_channel = Some(tx.channel);
        env.last_tx_time = now;
        self.fg_active.push((tx.id, tx.src, tx.channel));
    }

    fn tx_end(&mut self, now: SimTime, tx: &Transmission, faulted_drop: bool) {
        let now_ns = now.as_nanos();
        for u in tx.channel.spanned() {
            self.accrue(u, now_ns);
            self.active_count[u.index()] -= 1;
        }
        if !self.is_member(tx.src) {
            return;
        }
        if let Some(i) = self.fg_active.iter().position(|&(id, _, _)| id == tx.id) {
            self.fg_active.swap_remove(i);
        }
        // Foreground trace digest: every field that determines protocol
        // behaviour, member transmissions only. Node ids fold through
        // their stable identity so the digest is invariant under
        // sim-local renumbering (sharded == unsharded, DESIGN.md §13).
        let mut h = self.digest;
        h = fnv1a_word(h, self.stable_of(tx.src) as u64);
        h = fnv1a_word(h, tx.channel.low_index() as u64);
        h = fnv1a_word(h, width_tag(tx.channel));
        h = fnv1a_word(h, tx.start.as_nanos());
        h = fnv1a_word(h, tx.end.as_nanos());
        h = fnv1a_word(h, kind_tag(&tx.frame.kind));
        h = fnv1a_word(h, tx.frame.bytes() as u64);
        h = fnv1a_word(
            h,
            tx.frame.dst.map_or(u64::MAX, |d| self.stable_of(d) as u64),
        );
        h = fnv1a_word(h, faulted_drop as u64);
        self.digest = h;
    }
}

static ADAPTIVE_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static FIXED_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static EXPLAINED_LIVENESS: AtomicU64 = AtomicU64::new(0);
static EXPLAINED_OCCUPANCY: AtomicU64 = AtomicU64::new(0);
static REPORTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide oracle totals, for experiment reporting (mirrors
/// [`whitefi_mac::global_event_totals`]): snapshot before and after a
/// workload and diff with [`OracleTotals::delta_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleTotals {
    /// Violations reported by adaptive (WhiteFi) runs — the protocol
    /// bugs; must stay zero on seed scenarios.
    pub adaptive_violations: u64,
    /// Violations reported by pinned baseline runs. Static networks
    /// transmit over incumbents by design — that is the paper's
    /// motivating failure, not a simulator bug.
    pub fixed_violations: u64,
    /// Liveness misses explained by injected faults.
    pub explained_liveness: u64,
    /// Reports finalized.
    pub reports: u64,
}

impl OracleTotals {
    /// Counter-wise `self - earlier`.
    pub fn delta_since(&self, earlier: OracleTotals) -> OracleTotals {
        OracleTotals {
            adaptive_violations: self
                .adaptive_violations
                .wrapping_sub(earlier.adaptive_violations),
            fixed_violations: self.fixed_violations.wrapping_sub(earlier.fixed_violations),
            explained_liveness: self
                .explained_liveness
                .wrapping_sub(earlier.explained_liveness),
            reports: self.reports.wrapping_sub(earlier.reports),
        }
    }
}

/// Process-wide totals of every finalized [`OracleReport`].
pub fn global_oracle_totals() -> OracleTotals {
    OracleTotals {
        adaptive_violations: ADAPTIVE_VIOLATIONS.load(Ordering::Relaxed),
        fixed_violations: FIXED_VIOLATIONS.load(Ordering::Relaxed),
        explained_liveness: EXPLAINED_LIVENESS.load(Ordering::Relaxed),
        reports: REPORTS.load(Ordering::Relaxed),
    }
}

/// The oracle bank: owns the invariant state, hands out a passive
/// [`SimObserver`] tap, and finalizes into an [`OracleReport`].
pub struct OracleBank {
    inner: Rc<RefCell<Inner>>,
}

impl OracleBank {
    /// An empty bank with the given configuration.
    pub fn new(cfg: OracleConfig) -> Self {
        Self {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                members: Vec::new(),
                violations: Vec::new(),
                checked_tx: 0,
                digest: FNV_OFFSET,
                fg_active: Vec::new(),
                last_marker: SimTime::ZERO,
                pending_liveness: Vec::new(),
                pending_occupancy: Vec::new(),
                explained: 0,
                explained_occ: 0,
                busy_ns: [0; NUM_UHF_CHANNELS],
                active_count: [0; NUM_UHF_CHANNELS],
                last_change_ns: [0; NUM_UHF_CHANNELS],
            })),
        }
    }

    /// Registers a foreground member with its incumbent environment and
    /// *total* detection latency (configured delay plus any faulted
    /// extra). Non-registered nodes are background: they feed only the
    /// airtime conservation check.
    pub fn add_member(
        &self,
        node: NodeId,
        is_ap: bool,
        incumbents: &IncumbentSet,
        detection_total: SimDuration,
    ) {
        self.add_member_as(node, node, is_ap, incumbents, detection_total);
    }

    /// [`Self::add_member`], registering the member under a
    /// scenario-stable identity that may differ from the sim-local node
    /// id. Digests and violation details fold `stable`, so a member
    /// produces byte-identical reports regardless of which simulator —
    /// global or shard-local — hosts it (DESIGN.md §13).
    pub fn add_member_as(
        &self,
        node: NodeId,
        stable: NodeId,
        is_ap: bool,
        incumbents: &IncumbentSet,
        detection_total: SimDuration,
    ) {
        let mut inner = self.inner.borrow_mut();
        let mut static_occupied = SpectrumMap::all_free();
        for tv in &incumbents.tv {
            if tv.detectable_at(SCANNER_SENSITIVITY_DBM) {
                static_occupied.set_occupied(tv.channel);
            }
        }
        let mut mic_windows = Vec::new();
        for mic in &incumbents.mics {
            if mic.power_dbm < SCANNER_SENSITIVITY_DBM {
                continue;
            }
            for iv in mic.schedule.intervals() {
                mic_windows.push(MicWindow {
                    channel: mic.channel,
                    deadline_ns: iv.start + detection_total.as_nanos(),
                    off_ns: iv.end,
                });
            }
        }
        if inner.members.len() <= node {
            inner.members.resize_with(node + 1, || None);
        }
        inner.members[node] = Some(MemberEnv {
            stable,
            is_ap,
            static_occupied,
            mic_windows,
            live_open: None,
            last_tx_channel: None,
            last_tx_time: SimTime::ZERO,
        });
    }

    /// The passive engine tap; install with
    /// [`Simulator::set_observer`].
    pub fn observer(&self) -> Box<dyn SimObserver> {
        Box::new(OracleObserver {
            inner: Rc::clone(&self.inner),
        })
    }

    /// Finalizes the bank against the finished simulation: runs the
    /// airtime conservation check, closes liveness windows, correlates
    /// misses with injected faults, and returns the report. Also feeds
    /// the process-wide [`global_oracle_totals`] counters.
    pub fn finish(&self, sim: &Simulator) -> OracleReport {
        let mut inner = self.inner.borrow_mut();
        let now = sim.now();
        let now_ns = now.as_nanos();

        // --- Airtime conservation ------------------------------------
        for i in 0..NUM_UHF_CHANNELS {
            let mut mine = inner.busy_ns[i];
            if inner.active_count[i] > 0 {
                mine += now_ns - inner.last_change_ns[i];
            }
            let u = UhfChannel::from_index(i);
            let med = sim.medium().busy_total(u, now).as_nanos();
            if mine != med {
                inner.violate(
                    OracleKind::AirtimeConservation,
                    now,
                    None,
                    format!("UHF {i}: medium busy {med} ns, independent recomputation {mine} ns"),
                );
            }
            if med > now_ns {
                inner.violate(
                    OracleKind::AirtimeConservation,
                    now,
                    None,
                    format!("UHF {i}: busy {med} ns exceeds wall clock {now_ns} ns"),
                );
            }
        }

        // --- Backup liveness: close windows still open at the end ----
        let bound = inner.cfg.liveness_bound;
        let mut tail = Vec::new();
        for (n, m) in inner.members.iter_mut().enumerate() {
            if let Some(env) = m.as_mut() {
                if let Some(open) = env.live_open.take() {
                    if now.since(open) > bound {
                        tail.push((n, open, now));
                    }
                    // A window younger than the bound at simulation end
                    // is truncated, not judged.
                }
            }
        }
        inner.pending_liveness.extend(tail);

        // A miss is *explained* when an injected fault plausibly caused
        // it: any fault at a member node in (or shortly before) the
        // window, a faulted detection stretch on a member, or a skewed
        // scanner history horizon (which perturbs every chirp scan).
        let skewed = sim.fault_plan().is_some_and(|p| p.history_skew.is_some());

        // --- Channel occupancy: correlate splits with faults ---------
        // A split episode is explained when a fault hit a member within
        // the liveness bound before it: a dropped or delayed control
        // frame (SwitchAnnounce, Beacon) leaves part of the network on
        // the old channel until the client watchdog recovers — the
        // designed recovery path, not a protocol bug. Unfaulted splits
        // still violate.
        let pending_occ = std::mem::take(&mut inner.pending_occupancy);
        for v in pending_occ {
            let explained = skewed
                || sim.fault_events().iter().any(|e| {
                    inner.is_member(e.node) && e.time <= v.time && e.time + bound >= v.time
                });
            if explained {
                inner.explained_occ += 1;
                EXPLAINED_OCCUPANCY.fetch_add(1, Ordering::Relaxed);
            } else {
                inner.violations.push(v);
            }
        }

        let pending = std::mem::take(&mut inner.pending_liveness);
        for (node, open, close) in pending {
            let explained = skewed
                || sim.fault_events().iter().any(|e| {
                    inner.is_member(e.node)
                        && (matches!(e.kind, FaultEventKind::DetectionExtra(_))
                            || (e.time <= close && e.time + bound >= open))
                });
            if explained {
                // Count the explanation instead of a violation.
                inner.explained += 1;
                EXPLAINED_LIVENESS.fetch_add(1, Ordering::Relaxed);
            } else {
                let stable = inner.stable_of(node);
                inner.violate(
                    OracleKind::BackupLiveness,
                    close,
                    Some(stable),
                    format!(
                        "client {} disconnected at {:?} and had not reassociated \
                         {:?} later (bound {:?}), with no fault to explain it",
                        stable,
                        open,
                        close.since(open),
                        bound
                    ),
                );
            }
        }

        let report = OracleReport {
            violations: inner.violations.clone(),
            checked_tx: inner.checked_tx,
            explained_liveness: inner.explained,
            explained_occupancy: inner.explained_occ,
            trace_digest: inner.digest,
        };
        let bucket = if inner.cfg.adaptive {
            &ADAPTIVE_VIOLATIONS
        } else {
            &FIXED_VIOLATIONS
        };
        bucket.fetch_add(report.violations.len() as u64, Ordering::Relaxed);
        REPORTS.fetch_add(1, Ordering::Relaxed);
        report
    }
}

struct OracleObserver {
    inner: Rc<RefCell<Inner>>,
}

impl SimObserver for OracleObserver {
    fn on_tx_start(&mut self, now: SimTime, tx: &Transmission) {
        self.inner.borrow_mut().tx_start(now, tx);
    }

    fn on_tx_end(&mut self, now: SimTime, tx: &Transmission, faulted_drop: bool) {
        self.inner.borrow_mut().tx_end(now, tx, faulted_drop);
    }

    fn on_retune(&mut self, now: SimTime, node: NodeId, _old: WfChannel, _new: WfChannel) {
        let mut inner = self.inner.borrow_mut();
        if inner.is_member(node) {
            inner.last_marker = now;
        }
    }

    fn on_observed_map(&mut self, now: SimTime, node: NodeId, _map: &SpectrumMap) {
        let mut inner = self.inner.borrow_mut();
        if inner.is_member(node) {
            inner.last_marker = now;
        }
    }
}
