//! Property-based tests for the WhiteFi protocol layer.

// Candidate/channel counts are at most 84, so the usize→u32 narrowing in
// the scan bounds is exact.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi::{
    backup_candidates, baseline_discovery, evaluate_all, j_sift_discovery, l_sift_discovery, mcham,
    select_channel, ChirpDetector, NodeReport, SyntheticOracle,
};
use whitefi_phy::synth::{Burst, BurstKind};
use whitefi_phy::timing::chirp_bytes_for_slot;
use whitefi_phy::{PhyTiming, SimDuration, SimTime, Synthesizer};
use whitefi_spectrum::{
    AirtimeVector, ChannelLoad, SpectrumMap, UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS,
};

fn arb_map() -> impl Strategy<Value = SpectrumMap> {
    (0u32..(1 << NUM_UHF_CHANNELS)).prop_map(SpectrumMap::from_bits)
}

fn arb_airtime() -> impl Strategy<Value = AirtimeVector> {
    prop::collection::vec((0.0f64..1.0, 0u32..4), NUM_UHF_CHANNELS).prop_map(|loads| {
        let mut v = AirtimeVector::idle();
        for (i, (busy, aps)) in loads.into_iter().enumerate() {
            // Consistent measurements: busy channels have at least one AP.
            let aps = if busy > 0.05 { aps.max(1) } else { aps };
            v.set_load(UhfChannel::from_index(i), ChannelLoad::new(busy, aps));
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MCham is bounded by the optimal capacity and below by the
    /// fair-share floor.
    #[test]
    fn mcham_bounds(airtime in arb_airtime()) {
        for cand in SpectrumMap::all_free().available_channels() {
            let v = mcham(&airtime, cand);
            let cap = cand.width().capacity_factor();
            prop_assert!(v <= cap + 1e-9, "{cand}: {v} > cap {cap}");
            prop_assert!(v > 0.0, "{cand}: vanished");
        }
    }

    /// Adding load to a channel never increases any candidate's MCham
    /// (monotonicity).
    #[test]
    fn mcham_monotone_in_load(airtime in arb_airtime(), i in 0usize..NUM_UHF_CHANNELS) {
        let ch = UhfChannel::from_index(i);
        let mut heavier = airtime;
        let old = airtime.load(ch);
        heavier.set_load(ch, ChannelLoad::new((old.busy + 0.3).min(1.0), old.aps + 1));
        for cand in SpectrumMap::all_free().available_channels() {
            prop_assert!(
                mcham(&heavier, cand) <= mcham(&airtime, cand) + 1e-12,
                "{cand} improved under extra load"
            );
        }
    }

    /// The shared-table fast path scores every candidate like the direct
    /// per-candidate product (within log/exp rounding).
    #[test]
    fn evaluate_all_matches_mcham(airtime in arb_airtime()) {
        let fast = evaluate_all(&airtime);
        prop_assert_eq!(fast.len(), WfChannel::all().count());
        for (cand, v) in fast {
            let slow = mcham(&airtime, cand);
            prop_assert!(
                (v - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "{}: fast {} vs slow {}", cand, v, slow
            );
        }
    }

    /// The selected channel is always admissible at every node.
    #[test]
    fn selection_respects_all_maps(
        ap_map in arb_map(),
        client_maps in prop::collection::vec(arb_map(), 0..5),
        airtime in arb_airtime(),
    ) {
        let ap = NodeReport { map: ap_map, airtime };
        let clients: Vec<NodeReport> = client_maps
            .iter()
            .map(|&map| NodeReport { map, airtime })
            .collect();
        match select_channel(&ap, &clients) {
            Some((best, score)) => {
                prop_assert!(ap_map.admits(best));
                for c in &clients {
                    prop_assert!(c.map.admits(best));
                }
                prop_assert!(score > 0.0);
            }
            None => {
                // Correct only when no channel is admissible anywhere.
                let combined = SpectrumMap::union_all(
                    std::iter::once(ap_map).chain(client_maps.iter().copied()),
                );
                prop_assert!(combined.available_channels().is_empty());
            }
        }
    }

    /// Selection is idempotent (pure in its inputs).
    #[test]
    fn selection_deterministic(map in arb_map(), airtime in arb_airtime()) {
        let ap = NodeReport { map, airtime };
        prop_assert_eq!(select_channel(&ap, &[]), select_channel(&ap, &[]));
    }

    /// All three discovery algorithms find any admissible AP placement on
    /// any map, and agree on what they found.
    #[test]
    fn discovery_complete_and_consistent(map in arb_map(), pick in 0usize..84, seed in 0u64..100) {
        let candidates = map.available_channels();
        prop_assume!(!candidates.is_empty());
        let ap = candidates[pick % candidates.len()];
        let mut o1 = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(seed));
        let mut o2 = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(seed));
        let mut o3 = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(seed));
        let b = baseline_discovery(&mut o1, map).expect("baseline");
        let l = l_sift_discovery(&mut o2, map).expect("l-sift");
        let j = j_sift_discovery(&mut o3, map).expect("j-sift");
        prop_assert_eq!(b.found, ap);
        prop_assert_eq!(l.found, ap);
        prop_assert_eq!(j.found, ap);
    }

    /// SIFT-based discovery never does *more* dwells than exhaustively
    /// scanning all (F, W) combinations would in the worst case.
    #[test]
    fn sift_discovery_bounded_by_candidate_count(map in arb_map(), pick in 0usize..84) {
        let candidates = map.available_channels();
        prop_assume!(!candidates.is_empty());
        let ap = candidates[pick % candidates.len()];
        let worst = candidates.len() as u32 + whitefi_spectrum::NUM_UHF_CHANNELS as u32;
        let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
        let l = l_sift_discovery(&mut o, map).unwrap();
        prop_assert!(l.scans <= worst, "l-sift {} > {}", l.scans, worst);
        let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
        let j = j_sift_discovery(&mut o, map).unwrap();
        prop_assert!(j.scans <= worst, "j-sift {} > {}", j.scans, worst);
    }

    /// Backup candidates are always free 5 MHz channels disjoint from the
    /// main channel.
    #[test]
    fn backup_candidates_sound(map in arb_map(), pick in 0usize..84) {
        let candidates = map.available_channels();
        prop_assume!(!candidates.is_empty());
        let main = candidates[pick % candidates.len()];
        for b in backup_candidates(map, Some(main)) {
            prop_assert_eq!(b.width(), Width::W5);
            prop_assert!(map.admits(b));
            prop_assert!(!b.overlaps(main));
        }
    }

    /// A wider channel fully containing a narrower one at the same load
    /// never scores a lower optimal capacity-to-share tradeoff than the
    /// paper's examples imply: with uniform load x on all channels,
    /// MCham(W) = (W/5)·ρ^span, so ordering depends on ρ — verify the
    /// crossover behaviour is monotone: if W20 beats W10 at load x, it
    /// also beats it at any lighter load.
    #[test]
    fn width_preference_monotone_in_uniform_load(x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let (light, heavy) = if x < y { (x, y) } else { (y, x) };
        let uniform = |load: f64| {
            AirtimeVector::from_fn(|_| ChannelLoad::new(load, 1))
        };
        let c20 = WfChannel::from_parts(10, Width::W20);
        let c10 = WfChannel::from_parts(10, Width::W10);
        let heavy_pref_wide =
            mcham(&uniform(heavy), c20) >= mcham(&uniform(heavy), c10);
        if heavy_pref_wide {
            prop_assert!(
                mcham(&uniform(light), c20) >= mcham(&uniform(light), c10) - 1e-12,
                "wide preferred at heavy load {heavy} but not at light {light}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A noise-only backup-channel capture never produces chirp
    /// detections: receiver noise stays below the SIFT burst threshold
    /// for every noise seed.
    #[test]
    fn chirp_detector_silent_on_noise(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = Synthesizer::new().synthesize(&[], SimDuration::from_millis(8), &mut rng);
        let found = ChirpDetector::new().detect(&trace);
        prop_assert!(found.is_empty(), "noise-only detections: {found:?}");
    }

    /// An injected chirp is always found and its identity slot decoded
    /// from the on-air length, across slots, start offsets, amplitudes
    /// and noise seeds (the length must match
    /// `ChirpDetector::expected_samples` within SIFT's tolerance).
    #[test]
    fn chirp_detector_decodes_injected_slot(
        slot in 0u8..16,
        start_us in 100u64..2_000,
        amplitude in 600.0f64..2_000.0,
        seed in 0u64..1000,
    ) {
        let burst = Burst {
            start: SimTime::from_micros(start_us),
            duration: PhyTiming::for_width(Width::W5)
                .frame_duration(chirp_bytes_for_slot(slot)),
            width: Width::W5,
            amplitude,
            kind: BurstKind::Chirp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace =
            Synthesizer::new().synthesize(&[burst], SimDuration::from_millis(12), &mut rng);
        let found = ChirpDetector::new().detect(&trace);
        prop_assert_eq!(found.len(), 1, "slot {}: {:?}", slot, found);
        prop_assert_eq!(found[0].slot, Some(slot));
    }
}
