//! Generative fuzz sweep (DESIGN.md §15): sample the scenario schema,
//! compile, run, and hold every case to the oracle bank's standard —
//! zero engine violations, zero oracle violations.
//!
//! Case count: `SCENARIO_FUZZ_CASES` (default 8 in the everyday run;
//! `scripts/check.sh` runs the 32-case smoke). When a case fails, the
//! reproducing document and its seed are written to
//! `tests/corpus-failures/` at the repo root before the panic, so the
//! failure replays from a file: `whitefi::load` the `.ron`, compile,
//! run, and the violation is back.

use std::fs;
use std::path::PathBuf;

use whitefi::scenario_fuzz::{generate_doc, generate_file};

fn case_count() -> u64 {
    std::env::var("SCENARIO_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Repo-root corpus directory for reproducing documents.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus-failures")
}

/// Writes the reproducing `.ron` (with its seed in a header comment)
/// and returns the path for the panic message.
fn write_repro(seed: u64) -> PathBuf {
    let dir = corpus_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("fuzz-{seed:016x}.ron"));
    let body = format!(
        "// scenario_fuzz seed {seed} (0x{seed:016x}) — replay with\n\
         //   whitefi::scenario_fuzz::generate_doc({seed})\n\
         // or load this file, compile, and run.\n{}",
        generate_file(seed)
    );
    let _ = fs::write(&path, body);
    path
}

/// The sweep: every sampled scenario, single-AP or city, runs
/// invariant-clean under the full oracle bank.
#[test]
fn sampled_scenarios_run_oracle_clean() {
    for seed in 0..case_count() {
        let doc = generate_doc(seed);
        let Some(case) = doc.compile_sim() else {
            panic!("seed {seed}: generator produced a non-simulation document");
        };
        let out = case.run();
        if out.violations() != 0 || out.oracle_violation_count() != 0 {
            let path = write_repro(seed);
            panic!(
                "seed {seed}: {} engine violations, {} oracle violations — \
                 reproducer written to {}",
                out.violations(),
                out.oracle_violation_count(),
                path.display()
            );
        }
        assert!(out.checked_tx() > 0, "seed {seed}: oracles saw nothing");
    }
}

/// Replay determinism: a generated file loaded from its serialized
/// bytes compiles and runs to the same outcome as the in-memory
/// document — the corpus round trip loses nothing.
#[test]
fn corpus_files_replay_to_identical_outcomes() {
    for seed in [0u64, 3, 11] {
        let doc = generate_doc(seed);
        let reparsed = whitefi::parse_str(&generate_file(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: generated file rejected: {e}"));
        assert_eq!(doc, reparsed, "seed {seed}: file differs from document");
        let a = doc.compile_sim().expect("simulation document").run();
        let b = reparsed.compile_sim().expect("simulation document").run();
        assert_eq!(a, b, "seed {seed}: replay from file diverged");
    }
}
