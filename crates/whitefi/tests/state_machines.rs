//! Focused state-machine tests for the AP and client behaviours, driven
//! through small simulations (the integration suite covers full
//! scenarios; these pin down individual transitions and their timing).

use whitefi::{ApBehavior, ApConfig, ClientBehavior, ClientConfig};
use whitefi_mac::traffic::Sink;
use whitefi_mac::{Behavior, Ctx, Frame, FrameKind, NodeConfig, NodeId, Simulator};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{
    IncumbentSet, MicActivity, MicSchedule, SpectrumMap, TvStation, UhfChannel, WfChannel, Width,
    WirelessMic,
};

fn incumbents_for(map: SpectrumMap) -> IncumbentSet {
    let mut set = IncumbentSet::default();
    for ch in map.occupied_channels() {
        set.tv.push(TvStation::strong(ch));
    }
    set
}

fn building5() -> SpectrumMap {
    SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26])
}

/// Records every frame kind this node receives, with timestamps.
struct FrameLog {
    log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, String)>>>,
}

impl Behavior for FrameLog {
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    fn on_frame(&mut self, frame: &Frame, ctx: &mut Ctx) {
        let kind = match frame.kind {
            FrameKind::Beacon { .. } => "beacon",
            FrameKind::SwitchAnnounce { .. } => "switch",
            FrameKind::Data { .. } => "data",
            FrameKind::Chirp { .. } => "chirp",
            FrameKind::Report { .. } => "report",
            _ => "other",
        };
        self.log.borrow_mut().push((ctx.now(), kind.to_string()));
    }
}

#[test]
fn ap_beacons_every_100ms_with_backup_advertised() {
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let mut sim = Simulator::new(61);
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    sim.add_node(
        NodeConfig::on_channel(main)
            .ap()
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ApBehavior::new(ApConfig::default())),
    );
    sim.add_node(
        NodeConfig::on_channel(main).with_incumbents(incumbents_for(map)),
        Box::new(FrameLog { log: log.clone() }),
    );
    sim.run_until(SimTime::from_secs(1));
    let log = log.borrow();
    let beacons: Vec<SimTime> = log
        .iter()
        .filter(|(_, k)| k == "beacon")
        .map(|(t, _)| *t)
        .collect();
    // ~10 beacons in the first second, spaced ~100 ms.
    assert!(
        (9..=11).contains(&beacons.len()),
        "{} beacons",
        beacons.len()
    );
    for w in beacons.windows(2) {
        let gap = w[1].since(w[0]).as_secs_f64();
        assert!((0.08..0.13).contains(&gap), "beacon gap {gap}");
    }
}

#[test]
fn client_associates_via_report_and_ap_learns_it() {
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let mut sim = Simulator::new(62);
    let ap = sim.add_node(
        NodeConfig::on_channel(main)
            .ap()
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ApBehavior::new(
            ApConfig::default().saturating_downlink(500),
        )),
    );
    let client = sim.add_node(
        NodeConfig::on_channel(main)
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ClientBehavior::new(ClientConfig::new(ap, 0))),
    );
    sim.run_until(SimTime::from_secs(3));
    // The AP learned the client from its report and is sending it
    // downlink data.
    assert!(
        sim.stats(client).rx_data_frames > 10,
        "{:?}",
        sim.stats(client)
    );
    // And the client's reports were acknowledged.
    assert!(sim.stats(client).tx_acked_frames >= 2);
}

#[test]
fn client_watchdog_fires_when_ap_goes_silent() {
    // An AP that stops transmitting entirely (simulated by a bare Sink in
    // its place): the client must declare disconnection within its
    // watchdog timeout and retune to the fallback backup channel.
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let mut sim = Simulator::new(63);
    let fake_ap: NodeId =
        sim.add_node(NodeConfig::on_channel(main).ap().in_ssid(1), Box::new(Sink));
    let ccfg = ClientConfig::new(fake_ap, 0);
    let timeout = ccfg.disconnect_timeout;
    let client = sim.add_node(
        NodeConfig::on_channel(main)
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ClientBehavior::new(ccfg)),
    );
    sim.run_until(SimTime::ZERO + timeout + SimDuration::from_millis(450));
    let ch = sim.node_channel(client);
    assert_ne!(ch, main, "client never disconnected");
    assert_eq!(ch.width(), Width::W5, "backup must be 5 MHz, got {ch}");
    assert!(
        !ch.overlaps(main),
        "fallback backup overlaps old main: {ch}"
    );
}

#[test]
fn client_follows_switch_announce() {
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let target = WfChannel::from_parts(13, Width::W10);

    /// An AP stand-in that announces a switch at t = 1 s and then moves.
    struct AnnouncingAp {
        target: WfChannel,
    }
    impl Behavior for AnnouncingAp {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::from_millis(100), 1); // beacon tick
            ctx.set_timer(SimDuration::from_secs(1), 2);
        }
        fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
            match key {
                1 => {
                    ctx.send(Frame {
                        src: ctx.id(),
                        dst: None,
                        kind: FrameKind::Beacon { backup: None },
                    });
                    ctx.set_timer(SimDuration::from_millis(100), 1);
                }
                2 => {
                    let target = self.target;
                    ctx.send(Frame {
                        src: ctx.id(),
                        dst: None,
                        kind: FrameKind::SwitchAnnounce { target },
                    });
                    ctx.set_timer(SimDuration::from_millis(50), 3);
                }
                3 => ctx.set_channel(self.target),
                _ => {}
            }
        }
    }

    let mut sim = Simulator::new(64);
    let ap = sim.add_node(
        NodeConfig::on_channel(main).ap().in_ssid(1),
        Box::new(AnnouncingAp { target }),
    );
    let client = sim.add_node(
        NodeConfig::on_channel(main)
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ClientBehavior::new(ClientConfig::new(ap, 0))),
    );
    sim.run_until(SimTime::from_millis(1_500));
    assert_eq!(sim.node_channel(client), target, "client did not follow");
}

#[test]
fn client_rejects_switch_to_channel_blocked_at_client() {
    // The announce orders the network onto a channel the client's own map
    // blocks: the client must refuse and go to the backup instead
    // (footnote 1 of §4.1 — handled by the disconnection mechanism).
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let blocked_target = WfChannel::from_parts(13, Width::W10);

    struct AnnounceOnce {
        target: WfChannel,
    }
    impl Behavior for AnnounceOnce {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::from_millis(200), 1);
        }
        fn on_timer(&mut self, _key: u64, ctx: &mut Ctx) {
            let target = self.target;
            ctx.send(Frame {
                src: ctx.id(),
                dst: None,
                kind: FrameKind::SwitchAnnounce { target },
            });
        }
    }

    // Client's map additionally blocks channel 13 (inside the target).
    let mut client_map = map;
    client_map.set_occupied(UhfChannel::from_index(13));

    let mut sim = Simulator::new(65);
    let ap = sim.add_node(
        NodeConfig::on_channel(main).ap().in_ssid(1),
        Box::new(AnnounceOnce {
            target: blocked_target,
        }),
    );
    let client = sim.add_node(
        NodeConfig::on_channel(main)
            .in_ssid(1)
            .with_incumbents(incumbents_for(client_map)),
        Box::new(ClientBehavior::new(ClientConfig::new(ap, 0))),
    );
    sim.run_until(SimTime::from_secs(1));
    let ch = sim.node_channel(client);
    assert_ne!(ch, blocked_target, "client obeyed an inadmissible switch");
    assert_eq!(ch.width(), Width::W5, "client should sit on a backup: {ch}");
}

#[test]
fn ap_vacates_immediately_on_incumbent_and_goes_to_backup() {
    let map = building5();
    let main = WfChannel::from_parts(7, Width::W20);
    let mut inc = incumbents_for(map);
    inc.mics.push(WirelessMic::new(
        UhfChannel::from_index(7),
        MicSchedule::scripted(vec![MicActivity {
            start: SimTime::from_secs(1).as_nanos(),
            end: SimTime::from_secs(30).as_nanos(),
        }]),
    ));
    let mut sim = Simulator::new(66);
    let ap = sim.add_node(
        NodeConfig::on_channel(main)
            .ap()
            .in_ssid(1)
            .with_incumbents(inc),
        Box::new(ApBehavior::new(ApConfig::default())),
    );
    // Detection delay is 50 ms: shortly after, the AP must be off the
    // incumbent channel and on a 5 MHz backup.
    sim.run_until(SimTime::from_millis(1_200));
    let ch = sim.node_channel(ap);
    assert!(
        !ch.contains(UhfChannel::from_index(7)),
        "still on the mic: {ch}"
    );
    assert_eq!(
        ch.width(),
        Width::W5,
        "should be chirping on a backup: {ch}"
    );
    assert_eq!(sim.stats(ap).incumbent_violations, 0);
    // After the chirp-collect window it reassigns to the best remaining
    // channel (the 10 MHz fragment).
    sim.run_until(SimTime::from_secs(4));
    assert_eq!(sim.node_channel(ap).width(), Width::W10);
}

#[test]
fn unassociated_client_discovers_and_joins_via_j_sift() {
    // A new client boots with no knowledge of the AP's (F, W): it runs
    // incremental J-SIFT on its scanner, decodes a beacon on the
    // candidate channel, learns the AP's id and associates — the §4.2.2
    // bootstrap inside the live simulation.
    let map = building5();
    for (seed, ap_ch) in [
        (81u64, WfChannel::from_parts(7, Width::W20)),
        (82, WfChannel::from_parts(13, Width::W10)),
        (83, WfChannel::from_parts(17, Width::W5)),
    ] {
        let mut sim = Simulator::new(seed);
        let ap = sim.add_node(
            NodeConfig::on_channel(ap_ch)
                .ap()
                .in_ssid(1)
                .with_incumbents(incumbents_for(map)),
            Box::new(ApBehavior::new(
                ApConfig::default().saturating_downlink(800),
            )),
        );
        // The client starts parked on an arbitrary free 5 MHz channel.
        let park = WfChannel::from_parts(26, Width::W5);
        let ccfg = ClientConfig::new(ap, 0).discovering();
        let client = sim.add_node(
            NodeConfig::on_channel(park)
                .in_ssid(1)
                .with_incumbents(incumbents_for(map)),
            Box::new(ClientBehavior::new(ccfg)),
        );
        // Worst case on this 10-free-channel map: ~12 dwells × 120 ms
        // ≈ 1.5 s; allow generous margin for decode retries.
        sim.run_until(SimTime::from_secs(8));
        // The adaptive AP may have moved the network to a better channel
        // after association; the client must be wherever the AP is.
        assert_eq!(
            sim.node_channel(client),
            sim.node_channel(ap),
            "seed {seed}: client not on the AP's channel"
        );
        // Associated for real: the AP learned it and is sending data.
        assert!(
            sim.stats(client).rx_data_frames > 5,
            "seed {seed}: no downlink after association: {:?}",
            sim.stats(client)
        );
    }
}

#[test]
fn discovery_gives_up_gracefully_without_an_ap() {
    // No AP anywhere: the client keeps scanning (restarting passes) and
    // never transmits data or panics.
    let map = building5();
    let mut sim = Simulator::new(84);
    let ccfg = ClientConfig::new(0, 0).discovering();
    let client = sim.add_node(
        NodeConfig::on_channel(WfChannel::from_parts(26, Width::W5))
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ClientBehavior::new(ccfg)),
    );
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(sim.stats(client).tx_acked_frames, 0);
    assert_eq!(sim.stats(client).incumbent_violations, 0);
}
