//! Scenario-file conformance suite (DESIGN.md §15).
//!
//! Three satellites of the declarative-DSL work ride here: every
//! shipped `scenarios/*.ron` must round-trip through the canonical
//! serializer; every malformed fixture under `tests/scenario_rejects/`
//! must be rejected with its exact `file:line:col` diagnostic (no
//! panicking paths); and a compiled document must equal the hand-coded
//! engine build field for field.

use std::fs;
use std::path::{Path, PathBuf};

use whitefi::scenario_file::{self, ScenarioDoc};
use whitefi::CityScenario;

fn rel_dir(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn ron_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .ron files under {}", dir.display());
    files
}

/// Every shipped scenario parses, serializes canonically, and the
/// canonical form re-parses to an equal document. The second
/// serialization must reproduce the first byte for byte, so the
/// canonical form is a fixed point.
#[test]
fn shipped_scenarios_round_trip() {
    let mut seen = 0;
    for path in ron_files(&rel_dir("../../scenarios")) {
        let doc = scenario_file::load(&path).unwrap_or_else(|e| panic!("{e}"));
        let canon = doc.to_ron();
        let again = scenario_file::parse_str(&canon)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}\n{canon}", path.display()));
        assert_eq!(
            doc,
            again,
            "{}: round-trip changed the document",
            path.display()
        );
        assert_eq!(
            canon,
            again.to_ron(),
            "{}: canonical form is not a fixed point",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 7, "expected the six example files plus city_smoke");
}

/// Every malformed fixture is rejected with the exact diagnostic named
/// in its `// expect:` header — location and message, no panics. The
/// rendered error is `<path>:<line>:<col>: <message>`; the header
/// carries everything after `<path>:`.
#[test]
fn malformed_fixtures_report_exact_diagnostics() {
    let mut drifted = Vec::new();
    for path in ron_files(&rel_dir("tests/scenario_rejects")) {
        let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let expect = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("// expect: "))
            .unwrap_or_else(|| panic!("{}: missing `// expect:` header", path.display()))
            .trim();
        let err = scenario_file::load(&path)
            .err()
            .unwrap_or_else(|| panic!("{}: malformed fixture was accepted", path.display()));
        let rendered = err.to_string();
        let want = format!("{}:{expect}", path.display());
        if rendered != want {
            drifted.push(format!("  want: {want}\n  got:  {rendered}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "diagnostics drifted from fixture headers:\n{}",
        drifted.join("\n")
    );
}

/// `city_smoke.ron` compiles to exactly the engine scenario its
/// hand-coded equivalent builds: the loader adds nothing and loses
/// nothing on the city path.
#[test]
fn city_smoke_compiles_to_the_hand_coded_city() {
    let doc = scenario_file::load(rel_dir("../../scenarios/city_smoke.ron"))
        .unwrap_or_else(|e| panic!("{e}"));
    let ScenarioDoc::City(city_doc) = &doc else {
        panic!("city_smoke.ron is not a City document");
    };
    let compiled = city_doc.compile();

    let mut want = CityScenario::grid(90210, 4, 2, 120.0, 130.0);
    want.warmup = whitefi_phy::SimDuration::from_millis(200);
    want.duration = whitefi_phy::SimDuration::from_millis(400);
    want.sample_interval = whitefi_phy::SimDuration::from_millis(100);
    want.sync_window = whitefi_phy::SimDuration::from_millis(100);
    want.faults = Some(whitefi_mac::FaultPlan {
        seed: 17,
        drop_prob: 0.05,
        dup_prob: 0.02,
        delay_prob: 0.02,
        max_delay: whitefi_phy::SimDuration::from_millis(2),
        max_detection_extra: whitefi_phy::SimDuration::from_millis(10),
        history_skew: None,
    });
    assert_eq!(compiled.city, want, "compiled city differs from hand-coded");
    assert_eq!(compiled.shards, 2);
}

/// Document equality is semantic, not textual: reformatting a file
/// (comments, whitespace, trailing commas, key order preserved) parses
/// to the same document.
#[test]
fn formatting_is_not_semantic() {
    let terse = "Scenario(version:1,seed:9,map:Free([5,6,7]),clients:1,\
                 warmup_s:1.0,duration_s:2.0,sample_interval_s:0.5)";
    let commented = "// leading comment\n\
                     Scenario(\n\
                       version: 1, /* inline */\n\
                       seed: 9,\n\
                       map: Free([5, 6, 7,]),\n\
                       clients: 1,\n\
                       warmup_s: 1.0,\n\
                       duration_s: 2.0,\n\
                       sample_interval_s: 0.5,\n\
                     )\n";
    let a = scenario_file::parse_str(terse).unwrap_or_else(|e| panic!("{e}"));
    let b = scenario_file::parse_str(commented).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a, b);
}
