//! Sharding differential suite (DESIGN.md §13–14).
//!
//! The city layer's contract is byte-identity: partitioning a city into
//! influence-closed shards and simulating each shard in its own event
//! core must reproduce the single-simulator run exactly — per-cell
//! goodput vectors, timeline samples, oracle reports (violations,
//! checked counts, trace digests) and fault events all `==`. These
//! tests pin that contract on a structured grid city and on fully
//! random topologies (random positions, ranges, locales and fault
//! plans), at several shard counts each — and, since the cut
//! partitioner, three ways: cut-sharded == component-sharded ==
//! unsharded, with the cut's certified-silent/fallback machinery in the
//! loop (random topologies exercise both the silent and the fallback
//! path; the pinned checkerboard exercises pure silence).

use proptest::prelude::*;
use whitefi::{
    merge_city, run_city, run_city_group, run_city_with, shard_plan, CityPartition, CityScenario,
    Locale,
};
use whitefi_mac::FaultPlan;
use whitefi_phy::SimDuration;

fn quick(mut city: CityScenario) -> CityScenario {
    city.warmup = SimDuration::from_millis(300);
    city.duration = SimDuration::from_millis(700);
    city.sample_interval = SimDuration::from_millis(175);
    city.sync_window = SimDuration::from_millis(150);
    city
}

fn torture_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_prob: 0.08,
        dup_prob: 0.05,
        delay_prob: 0.05,
        max_delay: SimDuration::from_micros(900),
        max_detection_extra: SimDuration::from_millis(30),
        history_skew: None,
    }
}

/// A 16-AP grid with range just above the spacing, so the plan mixes
/// multi-cell components with singletons, run at 1/2/4/8 shards with
/// faults and oracles on. Every sharding must agree with the first.
#[test]
fn grid_city_byte_identical_across_shard_counts() {
    let mut city = quick(CityScenario::grid(31, 16, 2, 100.0, 105.0));
    city.faults = Some(torture_plan(9));
    let plan = shard_plan(&city, 8);
    assert!(
        plan.components > 1,
        "grid produced a single component — differential exercises nothing"
    );
    let (base, base_stats) = run_city(&city, 1);
    assert_eq!(base_stats.groups, 1);
    assert!(base.cells.iter().all(|c| c.oracle.checked_tx > 0));
    for shards in [2usize, 4, 8] {
        let (out, stats) = run_city(&city, shards);
        assert!(stats.groups <= shards);
        assert_eq!(
            base, out,
            "{shards}-shard run diverged from the unsharded reference"
        );
        let (cut_out, cut_stats) = run_city_with(&city, shards, CityPartition::Cut);
        assert_eq!(
            base, cut_out,
            "{shards}-shard cut run diverged from the unsharded reference \
             (fallback: {})",
            cut_stats.fallback
        );
    }
}

/// The dense-urban checkerboard: one influence component (the component
/// planner is stuck at one group), split 2/4/8 ways by the cut
/// partitioner, with a fault plan running. Every cut run — silent or
/// fallen back — must equal the unsharded run byte for byte; without
/// faults the interiors stay disjoint and the cut must certify silent.
#[test]
fn checkerboard_cut_byte_identical_and_silent() {
    let mut city = quick(CityScenario::checkerboard(77, 16, 1));
    let plan = shard_plan(&city, 8);
    assert_eq!(
        plan.components, 1,
        "checkerboard must chain into one component"
    );
    let (base, _) = run_city(&city, 1);
    for shards in [2usize, 4, 8] {
        let (out, stats) = run_city_with(&city, shards, CityPartition::Cut);
        assert_eq!(stats.groups, shards, "cut must split the component");
        assert!(
            !stats.fallback,
            "{shards}-shard checkerboard cut failed to certify silent"
        );
        assert_eq!(base, out, "{shards}-shard cut diverged from unsharded");
    }
    // With faults on: chirps land on in-parity backup fragments, so the
    // run still certifies silent — but equality is the only assert here
    // (silence under faults is an engine property, identity is the
    // contract).
    city.faults = Some(torture_plan(13));
    let (fbase, _) = run_city(&city, 1);
    let (fout, _) = run_city_with(&city, 4, CityPartition::Cut);
    assert_eq!(fbase, fout, "faulted checkerboard cut diverged");
}

/// Group-at-a-time execution (the parallel harness's code path:
/// `run_city_group` per group, then `merge_city`) agrees with
/// `run_city`, in any completion order.
#[test]
fn group_fanout_equals_run_city() {
    let mut city = quick(CityScenario::grid(47, 9, 1, 100.0, 110.0));
    city.faults = Some(torture_plan(21));
    let plan = shard_plan(&city, 4);
    let mut groups: Vec<_> = plan
        .groups
        .iter()
        .map(|g| run_city_group(&city, g))
        .collect();
    groups.rotate_left(1); // simulate out-of-order completion
    let (merged, _, _) = merge_city(&city, groups);
    let (reference, _) = run_city(&city, 1);
    assert_eq!(merged, reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topologies: random cell positions, ranges, locales,
    /// client counts and (half the time) a randomized fault plan. The
    /// sharded outcome equals the unsharded outcome byte for byte.
    #[test]
    fn random_topology_sharded_equals_unsharded(
        seed in 0u64..10_000,
        cells in prop::collection::vec(
            (0.0f64..400.0, 0.0f64..400.0, 30.0f64..220.0, 0usize..3, 1usize..3),
            2..6,
        ),
        shards in 2usize..5,
        with_faults in any::<bool>(),
    ) {
        let mut city = quick(CityScenario::grid(seed, cells.len(), 1, 100.0, 50.0));
        for (cell, &(x, y, range, locale, n_clients)) in
            city.cells.iter_mut().zip(cells.iter())
        {
            let locale = match locale {
                0 => Locale::Urban,
                1 => Locale::Suburban,
                _ => Locale::Rural,
            };
            cell.pos = (x, y);
            cell.range = range;
            cell.locale = locale;
            cell.map = locale.map();
            cell.n_clients = n_clients;
        }
        if with_faults {
            city.faults = Some(torture_plan(seed ^ 0xFA01));
        }
        let (base, _) = run_city(&city, 1);
        let (out, _) = run_city(&city, shards);
        prop_assert_eq!(&base, &out);
        let (cut_out, _) = run_city_with(&city, shards, CityPartition::Cut);
        prop_assert_eq!(&base, &cut_out);
    }
}
