//! Fault-injection torture suite (DESIGN.md §10).
//!
//! Fans randomized [`FaultPlan`]s — message drops, duplicates, delays,
//! stretched detection latency, skewed scanner history — over full
//! `run_whitefi` scenarios with adversarially timed wireless-mic
//! strikes, and asserts the always-on oracles stay silent: the protocol
//! must never transmit over a detected incumbent, must reassociate
//! within the liveness bound (or have the miss explained by an injected
//! fault), must keep the SSID on one channel outside transitions, and
//! must conserve airtime, *no matter which messages the fault layer
//! eats*.
//!
//! The companion suite in `crates/bench/tests/sim_torture.rs` fans the
//! full 256-plan sweep across the worker pool; this one keeps a bounded
//! deterministic subset in the default test run. Case count:
//! `SIM_TORTURE_CASES` (default 24). Half the cases (odd indices) are
//! drawn from the `scenario_fuzz` generator instead of the hand-rolled
//! mix, so the declarative schema's whole envelope runs under the same
//! oracle bank.

// Case-mix arithmetic narrows small `Mix::below` draws into indices; the
// values are single digits, the casts exact.
#![allow(clippy::cast_possible_truncation)]

use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi::{run_city, run_city_with, CityPartition, CityScenario};
use whitefi_mac::FaultPlan;
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{
    IncumbentSet, MicActivity, MicSchedule, SpectrumMap, UhfChannel, WfChannel, Width, WirelessMic,
};

/// SplitMix64 — a tiny self-contained parameter PRNG so the generator
/// needs no dev-dependencies and every case is a pure function of its
/// index.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A fragmented band that always keeps at least two free fragments
/// (one wide, one narrow) so a backup channel exists even after the
/// torture mic strikes the main fragment: free UHF channels are
/// 5..=9, 12..=14, 17 and 26, everything else carries a TV station.
fn fragmented_map() -> SpectrumMap {
    let free = [5usize, 6, 7, 8, 9, 12, 13, 14, 17, 26];
    let mut map = SpectrumMap::all_free();
    for i in 0..whitefi_spectrum::NUM_UHF_CHANNELS {
        if !free.contains(&i) {
            map.set_occupied(UhfChannel::from_index(i));
        }
    }
    map
}

fn mic_on(channel: UhfChannel, on: SimTime, off: SimTime) -> WirelessMic {
    WirelessMic::new(
        channel,
        MicSchedule::scripted(vec![MicActivity {
            start: on.as_nanos(),
            end: off.as_nanos(),
        }]),
    )
}

/// One torture case: a fragmented-spectrum WhiteFi network with an
/// adversarially timed mic strike on the main channel (and sometimes a
/// second strike on the predicted backup, mid-chirp-collection) plus a
/// randomized fault plan.
fn torture_scenario(case: u64) -> (Scenario, WfChannel) {
    let mut mix = Mix(0x7057_0001 ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let map = fragmented_map();
    let n_clients = 1 + mix.below(2) as usize; // 1–2 clients
    let mut s = Scenario::new(1000 + case, map, n_clients);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(4);

    // Main channel on the wide low fragment (5..=9 free).
    let initial = WfChannel::from_parts(7, Width::W20); // spans 5..=9

    // Mic strike on the main channel, timed anywhere from mid-warmup
    // (mid-association) to mid-measurement.
    let strike_at = SimTime::ZERO + SimDuration::from_millis(500 + mix.below(2_500));
    let strike_len = SimDuration::from_millis(500 + mix.below(1_500));
    let struck = UhfChannel::from_index(5 + mix.below(5) as usize);
    let mut incumbents = IncumbentSet::default();
    incumbents
        .mics
        .push(mic_on(struck, strike_at, strike_at + strike_len));

    // Sometimes a second strike on the deterministic backup pick
    // (lowest free 5 MHz channel outside the main), landing shortly
    // after the first so it hits mid-chirp-collection — the protocol
    // must fall back to a secondary backup. The map keeps channels
    // 12..=14, 17 and 26 free, so a fallback always exists.
    if mix.below(2) == 0 {
        if let Some(backup) = whitefi::choose_backup(s.combined_map(), Some(initial)) {
            let second_at = strike_at + SimDuration::from_millis(50 + mix.below(400));
            incumbents
                .mics
                .push(mic_on(backup.center(), second_at, second_at + strike_len));
        }
    }
    s.ap_extra_incumbents = Some(incumbents.clone());
    s.client_extra_incumbents = vec![Some(incumbents); n_clients];

    // Light background load on another fragment half the time.
    if mix.below(2) == 0 {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(13, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(5 + mix.below(10)),
            },
        });
    }

    // The randomized fault plan under test.
    s.faults = Some(FaultPlan {
        seed: mix.next(),
        drop_prob: mix.unit() * 0.25,
        dup_prob: mix.unit() * 0.2,
        delay_prob: mix.unit() * 0.2,
        max_delay: SimDuration::from_millis(1 + mix.below(4)),
        max_detection_extra: SimDuration::from_millis(mix.below(100)),
        history_skew: (mix.below(4) == 0).then(|| SimDuration::from_secs(1 + mix.below(5))),
    });
    (s, initial)
}

fn case_count() -> u64 {
    std::env::var("SIM_TORTURE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Case mix for the single-AP sweep: even indices use the hand-rolled
/// adversarial generator above; odd indices sample the declarative
/// scenario schema through the seeded fuzzer, compile it, and torture
/// whatever comes out. Both halves are pure functions of the index.
fn single_ap_case(case: u64) -> (Scenario, Option<WfChannel>) {
    if case % 2 == 1 {
        let compiled = whitefi::scenario_fuzz::generate_single_ap(0x7057_0001 ^ case).compile();
        let initial = compiled.initial();
        (compiled.scenario, initial)
    } else {
        let (s, initial) = torture_scenario(case);
        (s, Some(initial))
    }
}

/// The tentpole property: across randomized fault plans and adversarial
/// mic timings, every oracle stays silent and the engine's own
/// compliance meter stays zero.
#[test]
fn randomized_fault_plans_never_violate_invariants() {
    for case in 0..case_count() {
        let (s, initial) = single_ap_case(case);
        let out = run_whitefi(&s, initial);
        assert_eq!(
            out.violations, 0,
            "case {case}: engine compliance meter tripped"
        );
        assert!(
            out.oracle.clean(),
            "case {case} (plan {:?}): {:#?}",
            s.faults,
            out.oracle.violations
        );
        assert!(
            out.oracle.checked_tx > 0,
            "case {case}: oracles saw nothing"
        );
    }
}

/// Same seed ⇒ same violations (and same everything else): a torture
/// case is a pure function of its index, including the oracle report
/// and its trace digest.
#[test]
fn torture_cases_are_deterministic() {
    // 0 is hand-rolled, 7 and 13 are fuzz-drawn — both halves of the
    // mix must be pure functions of the index.
    for case in [0u64, 7, 13] {
        let (s, initial) = single_ap_case(case);
        let a = run_whitefi(&s, initial);
        let b = run_whitefi(&s, initial);
        assert_eq!(a, b, "case {case} not reproducible");
    }
}

/// The faults-off contract (DESIGN.md §10): a quiet plan — fault layer
/// installed, every probability zero — yields an outcome *equal* to not
/// installing the fault layer at all. Fault gates draw only from the
/// dedicated fault RNG family, never from node behaviour streams.
#[test]
fn quiet_plan_is_byte_identical_to_no_plan() {
    for case in [0u64, 3] {
        let (mut s, initial) = torture_scenario(case);
        s.faults = Some(FaultPlan::quiet(case));
        let quiet = run_whitefi(&s, Some(initial));
        s.faults = None;
        let off = run_whitefi(&s, Some(initial));
        assert_eq!(quiet, off, "case {case}: quiet plan perturbed the run");
        assert_eq!(quiet.oracle.trace_digest, off.oracle.trace_digest);
    }
}

/// One city torture case: a small multi-AP city with a randomized
/// geometry (so the shard structure varies from all-singletons to
/// multi-cell components), an adversarial mic strike inside one cell's
/// bootstrap footprint, and a randomized fault plan.
fn city_torture_case(case: u64) -> (CityScenario, usize) {
    let mut mix = Mix(0xC170_0001 ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let n_aps = 3 + mix.below(3) as usize;
    let range = [60.0, 100.0, 140.0][mix.below(3) as usize];
    let mut city = CityScenario::grid(2_000 + case, n_aps, 1 + mix.below(2) as usize, 100.0, range);
    city.warmup = SimDuration::from_millis(500);
    city.duration = SimDuration::from_millis(1_000 + mix.below(1_000));
    city.sample_interval = SimDuration::from_millis(250);

    // Mic strike on one spanned UHF channel of a victim cell's
    // bootstrap channel — forces that cell through the disconnection
    // protocol mid-run.
    let victim = mix.below(n_aps as u64) as usize;
    let spanned: Vec<UhfChannel> = city.cells[victim].initial_channel().spanned().collect();
    let struck = spanned[mix.below(spanned.len() as u64) as usize];
    let at = SimTime::ZERO + SimDuration::from_millis(400 + mix.below(800));
    let len = SimDuration::from_millis(300 + mix.below(700));
    let mut incumbents = IncumbentSet::default();
    incumbents.mics.push(mic_on(struck, at, at + len));
    city.cells[victim].extra_incumbents = Some(incumbents);

    city.faults = Some(FaultPlan {
        seed: mix.next(),
        drop_prob: mix.unit() * 0.25,
        dup_prob: mix.unit() * 0.2,
        delay_prob: mix.unit() * 0.2,
        max_delay: SimDuration::from_millis(1 + mix.below(4)),
        max_detection_extra: SimDuration::from_millis(mix.below(100)),
        history_skew: (mix.below(4) == 0).then(|| SimDuration::from_secs(1 + mix.below(5))),
    });
    let shards = 2 + (case % 3) as usize;
    (city, shards)
}

/// Case mix for the city sweep, mirroring [`single_ap_case`]: odd
/// indices come from the fuzzer's city generator (its own shard count
/// included), even indices from the hand-rolled geometry above.
fn city_case(case: u64) -> (CityScenario, usize) {
    if case % 2 == 1 {
        let compiled = whitefi::scenario_fuzz::generate_city(0xC170_0001 ^ case).compile();
        (compiled.city, compiled.shards)
    } else {
        city_torture_case(case)
    }
}

/// The city slice of the torture sweep: the same 24-case cadence, each
/// case run unsharded, component-sharded, and cut-sharded. The three
/// outcomes must agree byte for byte — oracle reports and fault events
/// included — and the oracles must stay silent in the face of the
/// strikes and the fault plan. The cut runs exercise both protocol
/// paths: tight-range cases certify silent, wide-range cases trip the
/// contact flag and take the deterministic global fallback.
#[test]
fn city_sweep_is_shard_invariant_under_faults() {
    for case in 0..case_count() {
        let (city, shards) = city_case(case);
        let (base, _) = run_city(&city, 1);
        let (out, stats) = run_city(&city, shards);
        assert_eq!(base, out, "case {case}: sharded != unsharded");
        assert!(stats.sync_rounds > 0, "case {case}: barrier never ran");
        let (cut_out, cut_stats) = run_city_with(&city, shards, CityPartition::Cut);
        assert_eq!(
            base, cut_out,
            "case {case}: cut-sharded != unsharded (fallback: {})",
            cut_stats.fallback
        );
        assert_eq!(
            base.violations(),
            0,
            "case {case}: engine compliance meter tripped"
        );
        assert_eq!(
            base.oracle_violations(),
            0,
            "case {case}: oracles tripped: {:#?}",
            base.cells
                .iter()
                .flat_map(|c| c.oracle.violations.iter())
                .collect::<Vec<_>>()
        );
    }
}

/// A fault-free run of the torture scenario is also invariant-clean:
/// the strikes themselves (without message loss) exercise the
/// disconnection protocol, and the oracles must accept it.
#[test]
fn fault_free_strikes_are_clean() {
    let (mut s, initial) = torture_scenario(2);
    s.faults = None;
    let out = run_whitefi(&s, Some(initial));
    assert_eq!(out.violations, 0);
    assert!(out.oracle.clean(), "{:#?}", out.oracle.violations);
    assert_eq!(out.oracle.explained_liveness, 0, "nothing to explain");
}
