//! Wireless-microphone audio interference model — the substitute for the
//! paper's anechoic-chamber PESQ study (§2.3).
//!
//! The paper measured recorded speech over a wireless mic while a WhiteFi
//! device transmitted 70-byte packets every 100 ms at −30 dBm on the same
//! UHF channel, and scored audio quality with PESQ: the Mean Opinion
//! Score **dropped by 0.9**, where "a MOS reduction of only 0.1 is
//! noticeable by the human ear" (citing Rix et al.).
//!
//! PESQ itself needs real audio; instead we model the MOS degradation as
//! a saturating function of the *interference duty* — how often and how
//! strongly data transmissions puncture the mic's FM signal — calibrated
//! to reproduce the paper's operating point exactly. The model is enough
//! for what the paper uses the measurement for: establishing that *any*
//! co-channel data transmission during a live mic recording is audible,
//! which is why WhiteFi's chirping protocol never signals on the
//! incumbent's channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Undisturbed MOS of the paper's wireless-mic speech recording.
pub const BASELINE_MOS: f64 = 4.2;

/// MOS reduction the human ear can notice (Rix et al., cited in §2.3).
pub const AUDIBLE_MOS_DELTA: f64 = 0.1;

/// The paper's interference workload: 70-byte packets every 100 ms at
/// −30 dBm.
pub fn paper_workload() -> Interference {
    Interference {
        packet_bytes: 70,
        interval_ms: 100.0,
        power_dbm: -30.0,
    }
}

/// A periodic co-channel data transmission pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// Packet size in bytes.
    pub packet_bytes: usize,
    /// Inter-packet interval in milliseconds.
    pub interval_ms: f64,
    /// Transmit power in dBm (FCC maximum for portable devices: 16 dBm).
    pub power_dbm: f64,
}

impl Interference {
    /// Packets per second.
    pub fn rate_hz(&self) -> f64 {
        1000.0 / self.interval_ms
    }
}

/// MOS model for a mic receiver experiencing co-channel interference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosModel {
    /// MOS with no interference.
    pub baseline: f64,
    /// Degradation at the calibration workload.
    calibration_delta: f64,
    /// Rate (Hz) of the calibration workload.
    calibration_rate: f64,
    /// Power (dBm) of the calibration workload.
    calibration_power: f64,
}

impl Default for MosModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl MosModel {
    /// The model calibrated to the paper's measurement: the paper
    /// workload (10 packets/s at −30 dBm) costs ΔMOS = 0.9.
    pub fn calibrated() -> Self {
        Self {
            baseline: BASELINE_MOS,
            calibration_delta: 0.9,
            calibration_rate: 10.0,
            calibration_power: -30.0,
        }
    }

    /// Predicted MOS degradation for an interference pattern.
    ///
    /// Each packet punctures the FM audio, producing an audible click;
    /// perceived degradation grows with the click rate but saturates
    /// (PESQ bottoms out near MOS 1). Power enters weakly above the mic
    /// receiver's capture threshold: at −30 dBm the interferer already
    /// dominates, so doubling power adds little. We use
    /// `Δ = Δcal · (r/rcal)^0.5 · (1 + 0.01·(P − Pcal))`, clamped so MOS
    /// stays in `[1, baseline]`.
    pub fn mos_delta(&self, interference: &Interference) -> f64 {
        let rate_factor = (interference.rate_hz() / self.calibration_rate).sqrt();
        let power_factor = 1.0 + 0.01 * (interference.power_dbm - self.calibration_power);
        let delta = self.calibration_delta * rate_factor * power_factor.max(0.0);
        delta.clamp(0.0, self.baseline - 1.0)
    }

    /// Predicted absolute MOS under interference.
    pub fn mos(&self, interference: &Interference) -> f64 {
        self.baseline - self.mos_delta(interference)
    }

    /// Whether the pattern is audible (ΔMOS ≥ 0.1).
    pub fn audible(&self, interference: &Interference) -> bool {
        self.mos_delta(interference) >= AUDIBLE_MOS_DELTA
    }

    /// The smallest packet rate (Hz) at the given power that is already
    /// audible — demonstrating that "even a single packet transmission
    /// causes audible interference" at realistic rates.
    pub fn audible_rate_threshold_hz(&self, power_dbm: f64) -> f64 {
        // Solve Δcal · sqrt(r/rcal) · pf = 0.1 for r.
        let pf = (1.0 + 0.01 * (power_dbm - self.calibration_power)).max(1e-6);
        let x = AUDIBLE_MOS_DELTA / (self.calibration_delta * pf);
        self.calibration_rate * x * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper_operating_point() {
        let m = MosModel::calibrated();
        let delta = m.mos_delta(&paper_workload());
        assert!((delta - 0.9).abs() < 1e-9, "ΔMOS {delta}");
        assert!((m.mos(&paper_workload()) - (BASELINE_MOS - 0.9)).abs() < 1e-9);
    }

    #[test]
    fn paper_workload_is_loudly_audible() {
        let m = MosModel::calibrated();
        assert!(m.audible(&paper_workload()));
        assert!(m.mos_delta(&paper_workload()) / AUDIBLE_MOS_DELTA >= 9.0);
    }

    #[test]
    fn even_sparse_traffic_is_audible() {
        // One 70-byte packet every 2 seconds is still audible — the
        // rationale for never transmitting control traffic over a mic.
        let m = MosModel::calibrated();
        let sparse = Interference {
            packet_bytes: 70,
            interval_ms: 2000.0,
            power_dbm: -30.0,
        };
        assert!(m.audible(&sparse), "Δ {}", m.mos_delta(&sparse));
    }

    #[test]
    fn degradation_monotone_in_rate_and_power() {
        let m = MosModel::calibrated();
        let mk = |interval_ms: f64, power: f64| Interference {
            packet_bytes: 70,
            interval_ms,
            power_dbm: power,
        };
        assert!(m.mos_delta(&mk(50.0, -30.0)) > m.mos_delta(&mk(100.0, -30.0)));
        assert!(m.mos_delta(&mk(100.0, -20.0)) > m.mos_delta(&mk(100.0, -30.0)));
    }

    #[test]
    fn mos_never_leaves_valid_range() {
        let m = MosModel::calibrated();
        for interval in [0.1, 1.0, 10.0, 100.0, 10_000.0] {
            for power in [-60.0, -30.0, 0.0, 16.0] {
                let i = Interference {
                    packet_bytes: 70,
                    interval_ms: interval,
                    power_dbm: power,
                };
                let mos = m.mos(&i);
                assert!((1.0..=BASELINE_MOS).contains(&mos), "mos {mos}");
            }
        }
    }

    #[test]
    fn audible_threshold_is_tiny() {
        let m = MosModel::calibrated();
        let thr = m.audible_rate_threshold_hz(-30.0);
        // Audible already well below 1 packet per second.
        assert!(thr < 1.0, "threshold {thr} Hz");
        // And consistent with the model.
        let at_thr = Interference {
            packet_bytes: 70,
            interval_ms: 1000.0 / thr,
            power_dbm: -30.0,
        };
        assert!((m.mos_delta(&at_thr) - AUDIBLE_MOS_DELTA).abs() < 1e-9);
    }

    #[test]
    fn rate_helper() {
        assert!((paper_workload().rate_hz() - 10.0).abs() < 1e-12);
    }
}
