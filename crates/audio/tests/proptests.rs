//! Property-based tests for the MOS interference model.

use proptest::prelude::*;
use whitefi_audio::{Interference, MosModel, AUDIBLE_MOS_DELTA, BASELINE_MOS};

fn arb_interference() -> impl Strategy<Value = Interference> {
    (1.0f64..10_000.0, -60.0f64..16.0).prop_map(|(interval_ms, power_dbm)| Interference {
        packet_bytes: 70,
        interval_ms,
        power_dbm,
    })
}

proptest! {
    /// MOS stays within [1, baseline] for any pattern.
    #[test]
    fn mos_in_range(i in arb_interference()) {
        let m = MosModel::calibrated();
        let mos = m.mos(&i);
        prop_assert!((1.0..=BASELINE_MOS).contains(&mos), "mos {}", mos);
        prop_assert!(m.mos_delta(&i) >= 0.0);
    }

    /// More frequent packets never sound better.
    #[test]
    fn monotone_in_rate(i in arb_interference(), factor in 1.05f64..10.0) {
        let m = MosModel::calibrated();
        let denser = Interference { interval_ms: i.interval_ms / factor, ..i };
        prop_assert!(m.mos_delta(&denser) >= m.mos_delta(&i) - 1e-12);
    }

    /// Louder packets never sound better.
    #[test]
    fn monotone_in_power(i in arb_interference(), extra_db in 0.1f64..30.0) {
        let m = MosModel::calibrated();
        let louder = Interference { power_dbm: (i.power_dbm + extra_db).min(16.0), ..i };
        prop_assert!(m.mos_delta(&louder) >= m.mos_delta(&i) - 1e-12);
    }

    /// Audibility is consistent with the delta.
    #[test]
    fn audible_iff_delta(i in arb_interference()) {
        let m = MosModel::calibrated();
        prop_assert_eq!(m.audible(&i), m.mos_delta(&i) >= AUDIBLE_MOS_DELTA);
    }

    /// The audible-rate threshold really is the boundary.
    #[test]
    fn threshold_boundary(power in -60.0f64..16.0) {
        let m = MosModel::calibrated();
        let thr = m.audible_rate_threshold_hz(power);
        prop_assume!(thr > 1e-6 && thr < 1e4);
        let above = Interference { packet_bytes: 70, interval_ms: 1000.0 / (thr * 1.01), power_dbm: power };
        let below = Interference { packet_bytes: 70, interval_ms: 1000.0 / (thr * 0.99), power_dbm: power };
        prop_assert!(m.audible(&above));
        prop_assert!(!m.audible(&below));
    }
}
