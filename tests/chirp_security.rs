//! The §4.3 fake-chirp attack: "An attacker can potentially hijack our
//! system by sending fake chirps. However, the impact of this attack is
//! limited. Once the AP's main radio switches to the backup channel, it
//! will process the chirp packet only if it is encoded with the network's
//! security key … the overhead of this attack is the extra time taken to
//! switch across channels."

use whitefi::{ApBehavior, ApConfig, ClientBehavior, ClientConfig};
use whitefi_mac::{Behavior, Ctx, Frame, FrameKind, NodeConfig, Simulator};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::building5_map;
use whitefi_spectrum::{IncumbentSet, SpectrumMap, TvStation, WfChannel, Width};

/// Broadcasts fake chirps (wrong key) on the victim's backup channel.
struct FakeChirper {
    interval: SimDuration,
}

impl Behavior for FakeChirper {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.interval, 0);
    }
    fn on_timer(&mut self, _key: u64, ctx: &mut Ctx) {
        if ctx.queue_len() == 0 {
            ctx.send(Frame {
                src: ctx.id(),
                dst: None,
                kind: FrameKind::Chirp {
                    map: SpectrumMap::all_occupied(), // poison payload
                    slot: 3,
                    key: 0xdead, // not the network's key
                },
            });
        }
        ctx.set_timer(self.interval, 0);
    }
}

fn incumbents_for(map: SpectrumMap) -> IncumbentSet {
    let mut set = IncumbentSet::default();
    for ch in map.occupied_channels() {
        set.tv.push(TvStation::strong(ch));
    }
    set
}

fn run_with_attacker(attack: bool, seed: u64) -> (f64, WfChannel) {
    let map = building5_map();
    let main = WfChannel::from_parts(7, Width::W20);
    let backup = whitefi::backup_candidates(map, Some(main))[0];

    let mut sim = Simulator::new(seed);
    let mut ap_cfg = ApConfig::default().saturating_downlink(1000);
    ap_cfg.key = 0xc0ffee;
    let ap = sim.add_node(
        NodeConfig::on_channel(main)
            .ap()
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ApBehavior::new(ap_cfg)),
    );
    let mut ccfg = ClientConfig::new(ap, 0);
    ccfg.key = 0xc0ffee;
    let client = sim.add_node(
        NodeConfig::on_channel(main)
            .in_ssid(1)
            .with_incumbents(incumbents_for(map)),
        Box::new(ClientBehavior::new(ccfg)),
    );
    if attack {
        sim.add_node(
            NodeConfig::on_channel(backup),
            Box::new(FakeChirper {
                interval: SimDuration::from_millis(500),
            }),
        );
    }
    sim.run_until(SimTime::from_secs(2));
    sim.reset_stats();
    sim.run_until(SimTime::from_secs(20));
    let bytes = sim.stats(client).rx_data_bytes + sim.stats(client).tx_acked_bytes;
    let mbps = bytes as f64 * 8.0 / 18.0 / 1e6;
    (mbps, sim.node_channel(ap))
}

#[test]
fn fake_chirps_cost_time_but_cannot_steer_the_network() {
    let (clean_mbps, _) = run_with_attacker(false, 51);
    let (attacked_mbps, final_ch) = run_with_attacker(true, 51);

    // The attack drags the AP's main radio to the backup channel on every
    // 3 s scan — a real but bounded cost.
    assert!(
        attacked_mbps > 0.5 * clean_mbps,
        "attack cost unbounded: {attacked_mbps} vs clean {clean_mbps}"
    );
    // The poisoned all-occupied map must NOT have been ingested: the
    // network keeps operating on admissible spectrum (a hijacked AP
    // believing the attacker's map would have gone silent / NoChannel).
    assert!(
        building5_map().admits(final_ch),
        "network steered onto inadmissible spectrum: {final_ch}"
    );
    assert!(attacked_mbps > 0.5, "network died under fake chirps");
}

#[test]
fn authentic_chirps_still_processed_under_matching_key() {
    // Sanity: with matching keys the normal §5.3 recovery flow works
    // (covered end-to-end elsewhere; here just the key plumbing).
    let (mbps, _) = run_with_attacker(false, 52);
    assert!(mbps > 1.0, "baseline network unhealthy: {mbps}");
}
