//! Geo-location database integration: per-node spectrum maps derived
//! from protected TV contours at each node's physical location — the
//! §2.1 spatial variation arising from geography rather than from random
//! flips, feeding the same assignment machinery.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi::driver::{run_whitefi, Scenario};
use whitefi::{select_channel, NodeReport};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{
    AirtimeVector, GeoDatabase, Location, SpectrumMap, StationRecord, UhfChannel,
};

/// A two-station database: one full-power station north, one south.
fn two_city_db() -> GeoDatabase {
    let mut db = GeoDatabase::new();
    db.register(StationRecord {
        channel: UhfChannel::from_index(4),
        site: Location::new(0.0, 120.0),
        erp_kw: 1000.0,
    });
    db.register(StationRecord {
        channel: UhfChannel::from_index(20),
        site: Location::new(0.0, -120.0),
        erp_kw: 1000.0,
    });
    db
}

#[test]
fn nodes_between_markets_see_different_maps() {
    let db = two_city_db();
    // AP in the middle; one client pulled north, one pulled south.
    let ap_map = db.query(Location::new(0.0, 0.0));
    let north = db.query(Location::new(0.0, 40.0));
    let south = db.query(Location::new(0.0, -40.0));
    // In the middle both stations are out of protection range.
    assert!(ap_map.is_free(UhfChannel::from_index(4)));
    assert!(ap_map.is_free(UhfChannel::from_index(20)));
    // The northern client is inside station A's protected area only.
    assert!(north.is_occupied(UhfChannel::from_index(4)));
    assert!(north.is_free(UhfChannel::from_index(20)));
    // And vice versa.
    assert!(south.is_free(UhfChannel::from_index(4)));
    assert!(south.is_occupied(UhfChannel::from_index(20)));
    // Selection over the three maps avoids both protected channels.
    let ap = NodeReport {
        map: ap_map,
        airtime: AirtimeVector::idle(),
    };
    let clients = [
        NodeReport {
            map: north,
            airtime: AirtimeVector::idle(),
        },
        NodeReport {
            map: south,
            airtime: AirtimeVector::idle(),
        },
    ];
    let (best, _) = select_channel(&ap, &clients).unwrap();
    assert!(!best.contains(UhfChannel::from_index(4)), "{best}");
    assert!(!best.contains(UhfChannel::from_index(20)), "{best}");
}

#[test]
fn network_with_database_maps_serves_all_clients() {
    let db = two_city_db();
    let mut s = Scenario::new(71, db.query(Location::new(0.0, 0.0)), 2);
    s.client_maps[0] = db.query(Location::new(0.0, 40.0));
    s.client_maps[1] = db.query(Location::new(0.0, -40.0));
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(4);
    let out = run_whitefi(&s, None);
    assert_eq!(out.violations, 0);
    for (i, &mbps) in out.per_client_mbps.iter().enumerate() {
        assert!(mbps > 0.2, "client {i} starved: {mbps}");
    }
    // The operating channel is admissible under every node's database map.
    let final_ch = out.samples.last().unwrap().ap_channel;
    for map in std::iter::once(s.ap_map).chain(s.client_maps.iter().copied()) {
        assert!(map.admits(final_ch), "{final_ch} blocked in some map");
    }
}

#[test]
fn dense_metro_database_leaves_usable_spectrum() {
    // Even a 25-station metro keeps some channels usable downtown, and
    // the assignment algorithm finds them.
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    let db = GeoDatabase::synthetic_metro(25, 60.0, &mut rng);
    let downtown: SpectrumMap = db.query(Location::new(0.0, 0.0));
    let ap = NodeReport {
        map: downtown,
        airtime: AirtimeVector::idle(),
    };
    if downtown.free_count() > 0 {
        let pick = select_channel(&ap, &[]);
        assert!(pick.is_some(), "free spectrum but no channel selected");
        let (best, _) = pick.unwrap();
        assert!(downtown.admits(best));
    }
}
