//! Golden-trace snapshot: one small seeded `run_whitefi` scenario whose
//! foreground event-trace digest is committed, guarding the
//! byte-identical determinism contract (DESIGN.md §7–§10)
//! independently of the full experiment sweep.
//!
//! Regen after an *intended* protocol/timing change:
//! `GOLDEN_BLESS=1 cargo test --test golden_trace` (then commit
//! `tests/golden/whitefi_trace.digest`).

use std::path::PathBuf;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{SpectrumMap, UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};

/// The pinned scenario: fragmented spectrum, two clients, one
/// background pair — small enough to run in seconds, rich enough to
/// exercise beacons, data, reports, ACKs and the assignment path.
fn golden_scenario() -> Scenario {
    let free = [5usize, 6, 7, 8, 9, 12, 13, 14, 17, 26];
    let mut map = SpectrumMap::all_free();
    for i in 0..NUM_UHF_CHANNELS {
        if !free.contains(&i) {
            map.set_occupied(UhfChannel::from_index(i));
        }
    }
    let mut s = Scenario::new(42, map, 2);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.background.push(BackgroundPair {
        channel: WfChannel::from_parts(13, Width::W5),
        traffic: BackgroundTraffic::Cbr {
            interval: SimDuration::from_millis(10),
        },
    });
    s
}

fn digest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("whitefi_trace.digest")
}

#[test]
fn golden_trace_digest_matches() {
    let out = run_whitefi(&golden_scenario(), None);
    assert_eq!(out.violations, 0);
    assert!(out.oracle.clean(), "{:?}", out.oracle.violations);
    let got = format!("{:016x}", out.oracle.trace_digest);

    let path = digest_path();
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden digest {}: {e}", path.display()));
    let committed = committed.trim();

    if committed == "UNINITIALIZED" {
        // First native run: the digest cannot be precomputed without
        // executing the simulator, so the sentinel defers blessing to
        // the first machine that runs the test. Record the digest and
        // print the exact commands that re-bless it on purpose, so the
        // deferral path teaches the workflow instead of hiding it.
        std::fs::write(&path, format!("{got}\n")).expect("write golden digest");
        eprintln!(
            "golden digest was UNINITIALIZED; blessed {got} -> {}\n\
             commit the file, and re-bless after intended changes with:\n\
             GOLDEN_BLESS=1 cargo test --test golden_trace\n\
             or: scripts/check.sh --bless",
            path.display()
        );
        return;
    }
    if std::env::var("GOLDEN_BLESS").is_ok() {
        // Explicit re-bless after an intended protocol/timing change.
        std::fs::write(&path, format!("{got}\n")).expect("write golden digest");
        eprintln!("re-blessed golden trace digest {got} -> {}", path.display());
        return;
    }

    assert_eq!(
        committed, got,
        "golden foreground trace digest changed. If the protocol/timing \
         change is intended, regen with: GOLDEN_BLESS=1 cargo test --test \
         golden_trace"
    );
}

/// The digest itself is deterministic: two runs of the pinned scenario
/// agree exactly (this holds even before the sentinel is blessed).
#[test]
fn golden_scenario_is_reproducible() {
    let a = run_whitefi(&golden_scenario(), None);
    let b = run_whitefi(&golden_scenario(), None);
    assert_eq!(a, b);
    assert_eq!(a.oracle.trace_digest, b.oracle.trace_digest);
}
