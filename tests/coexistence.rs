//! Two WhiteFi networks sharing the same band — the multi-AP case the
//! paper leaves as follow-on work, exercised here as an extension: each
//! AP measures the *other* network as background (the SSID-exclusion rule
//! of Equation 1) and the two should settle on disjoint spectrum when
//! enough is available.

// Client slot indices are tiny (a handful of clients per network), so
// the usize→u8 narrowing is exact.
#![allow(clippy::cast_possible_truncation)]

use whitefi::{ApBehavior, ApConfig, ClientBehavior, ClientConfig};
use whitefi_mac::{NodeConfig, NodeId, Simulator};
use whitefi_phy::SimTime;
use whitefi_repro::campus_sim_map;
use whitefi_spectrum::{IncumbentSet, SpectrumMap, TvStation, WfChannel, Width};

fn incumbents_for(map: SpectrumMap) -> IncumbentSet {
    let mut set = IncumbentSet::default();
    for ch in map.occupied_channels() {
        set.tv.push(TvStation::strong(ch));
    }
    set
}

/// Builds one WhiteFi network (AP + `n_clients`) in `ssid` starting on
/// `initial`; returns (ap, clients).
fn add_network(
    sim: &mut Simulator,
    ssid: u32,
    map: SpectrumMap,
    initial: WfChannel,
    n_clients: usize,
) -> (NodeId, Vec<NodeId>) {
    let ap_cfg = ApConfig::default().saturating_downlink(1000);
    let ap = sim.add_node(
        NodeConfig::on_channel(initial)
            .ap()
            .in_ssid(ssid)
            .with_incumbents(incumbents_for(map)),
        Box::new(ApBehavior::new(ap_cfg)),
    );
    let mut clients = Vec::new();
    for i in 0..n_clients {
        let ccfg = ClientConfig::new(ap, i as u8);
        let id = sim.add_node(
            NodeConfig::on_channel(initial)
                .in_ssid(ssid)
                .with_incumbents(incumbents_for(map)),
            Box::new(ClientBehavior::new(ccfg)),
        );
        clients.push(id);
    }
    (ap, clients)
}

#[test]
fn two_networks_separate_and_both_thrive() {
    let map = campus_sim_map();
    let mut sim = Simulator::new(31);
    // Both networks boot on the SAME 20 MHz channel — worst case.
    let start = WfChannel::from_parts(4, Width::W20);
    let (ap_a, clients_a) = add_network(&mut sim, 1, map, start, 1);
    let (ap_b, clients_b) = add_network(&mut sim, 2, map, start, 1);

    sim.run_until(SimTime::from_secs(20));

    let ch_a = sim.node_channel(ap_a);
    let ch_b = sim.node_channel(ap_b);
    // At least one network should have moved off the shared channel.
    // (With B = 1 the fair-share floor 1/2 per channel means staying can
    // be rational when no clean fragment fits both, but the campus map
    // has room for two.)
    assert!(
        !ch_a.overlaps(ch_b) || ch_a != ch_b,
        "networks still glued to the same channel: {ch_a} vs {ch_b}"
    );

    // Measure steady-state goodput for both networks.
    sim.reset_stats();
    let t0 = sim.now();
    sim.run_until(SimTime::from_secs(26));
    let span = sim.now().since(t0);
    let g = |clients: &[NodeId]| -> f64 {
        clients
            .iter()
            .map(|&c| {
                let s = sim.stats(c);
                (s.rx_data_bytes + s.tx_acked_bytes) as f64 * 8.0 / span.as_secs_f64() / 1e6
            })
            .sum()
    };
    let ga = g(&clients_a);
    let gb = g(&clients_b);
    assert!(ga > 1.0, "network A starved: {ga} Mbps");
    assert!(gb > 1.0, "network B starved: {gb} Mbps");
    // Rough parity: neither network monopolizes.
    let ratio = ga.max(gb) / ga.min(gb);
    assert!(ratio < 4.0, "grossly unfair coexistence: {ga} vs {gb}");
    // No incumbent violations anywhere.
    for n in 0..sim.node_count() {
        assert_eq!(sim.stats(n).incumbent_violations, 0, "node {n}");
    }
}

#[test]
fn second_network_sees_first_as_background() {
    // Network A saturates a 20 MHz channel. A later scanner (network B's
    // AP position) must measure A's airtime and AP count on those
    // channels — but exclude its own SSID if it shares one.
    let map = campus_sim_map();
    let mut sim = Simulator::new(32);
    let ch_a = WfChannel::from_parts(4, Width::W20);
    let (_ap_a, _clients_a) = add_network(&mut sim, 1, map, ch_a, 1);
    sim.run_until(SimTime::from_secs(4));

    let from = SimTime::from_secs(2);
    let to = SimTime::from_secs(4);
    for u in ch_a.spanned() {
        // A foreign observer (no SSID filter) sees the traffic.
        let busy = sim.medium().airtime_in_window(u, from, to);
        assert!(busy > 0.3, "channel {} busy {busy}", u.index());
        let aps = sim.medium().ap_count_in_window(u, from, to);
        assert!(aps >= 1, "no AP counted on {}", u.index());
        // Network A itself must NOT count its own traffic.
        let own = sim
            .medium()
            .airtime_in_window_excluding(u, from, to, Some(1));
        assert!(own < 0.05, "self-measured busy {own}");
        let own_aps = sim
            .medium()
            .ap_count_in_window_excluding(u, from, to, Some(1));
        assert_eq!(own_aps, 0);
    }
}
