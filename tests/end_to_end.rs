//! End-to-end integration tests: the full WhiteFi network (AP + clients +
//! background + incumbents) driven through the discrete-event simulator.

use whitefi::driver::{run_fixed, run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::{building5_map, campus_sim_map, scripted_mic};
use whitefi_spectrum::{IncumbentSet, SpectrumMap, UhfChannel, WfChannel, Width};

fn quick(mut s: Scenario) -> Scenario {
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(3);
    s
}

#[test]
fn association_transfer_and_fairness() {
    let s = quick(Scenario::new(11, campus_sim_map(), 3));
    let out = run_whitefi(&s, None);
    assert_eq!(out.per_client_mbps.len(), 3);
    for (i, &mbps) in out.per_client_mbps.iter().enumerate() {
        assert!(mbps > 0.1, "client {i} starved: {mbps} Mbps");
    }
    assert_eq!(out.violations, 0);
}

#[test]
fn adaptive_beats_or_matches_bad_static_choice() {
    // Pin the static network onto a channel shared with heavy background;
    // the adaptive network must do better.
    let mut s = quick(Scenario::new(12, campus_sim_map(), 2));
    let loaded = WfChannel::from_parts(4, Width::W20);
    for c in [2usize, 3, 4, 5, 6] {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(c, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(3),
            },
        });
    }
    s.duration = SimDuration::from_secs(5);
    let adaptive = run_whitefi(&s, Some(loaded));
    let pinned = run_fixed(&s, loaded);
    assert!(
        adaptive.aggregate_mbps > 1.2 * pinned.aggregate_mbps,
        "adaptive {} vs pinned {}",
        adaptive.aggregate_mbps,
        pinned.aggregate_mbps
    );
}

#[test]
fn mic_at_ap_forces_vacate_without_violations() {
    // The mic lands at the AP itself (the involuntary-switch path that
    // does not need chirping).
    let mut s = quick(Scenario::new(13, building5_map(), 1));
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(2),
        SimTime::from_secs(60),
    ));
    s.ap_extra_incumbents = Some(inc);
    s.duration = SimDuration::from_secs(9);
    let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
    assert_eq!(out.violations, 0, "transmitted over the mic");
    // The AP must end up off the blocked fragment…
    let final_ch = out.samples.last().unwrap().ap_channel;
    assert!(
        !final_ch.contains(UhfChannel::from_index(7)),
        "still on the mic channel: {final_ch}"
    );
    // …and traffic must flow again in the last second.
    let tail_bytes: u64 = out
        .samples
        .iter()
        .rev()
        .take(10)
        .map(|smp| smp.bytes_delta)
        .sum();
    assert!(tail_bytes > 0, "no traffic after recovery");
}

#[test]
fn mic_at_client_recovers_via_chirping() {
    let mut s = quick(Scenario::new(14, building5_map(), 1));
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(2),
        SimTime::from_secs(60),
    ));
    s.client_extra_incumbents[0] = Some(inc);
    s.duration = SimDuration::from_secs(10);
    s.sample_interval = SimDuration::from_millis(100);
    let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
    assert_eq!(out.violations, 0);
    // Recovery within the paper's 4 s bound (3 s backup scan + selection).
    let onset = SimTime::from_secs(2);
    let recovered = out
        .samples
        .iter()
        .find(|smp| {
            smp.t > onset
                && !smp.ap_channel.contains(UhfChannel::from_index(7))
                && smp.bytes_delta > 0
        })
        .expect("never recovered");
    let lag = recovered.t.since(onset).as_secs_f64();
    assert!(lag <= 4.5, "reconnection took {lag} s");
}

#[test]
fn serial_mic_events_keep_network_alive() {
    // Failure injection: mics strike the network's channels repeatedly;
    // the network must keep moving and keep moving data.
    let mut s = quick(Scenario::new(15, campus_sim_map(), 2));
    let mut inc = IncumbentSet::default();
    // Strike the two best fragments in sequence.
    inc.mics.push(scripted_mic(
        4,
        SimTime::from_secs(2),
        SimTime::from_secs(30),
    ));
    inc.mics.push(scripted_mic(
        11,
        SimTime::from_secs(5),
        SimTime::from_secs(30),
    ));
    s.ap_extra_incumbents = Some(inc.clone());
    for c in s.client_extra_incumbents.iter_mut() {
        *c = Some(inc.clone());
    }
    s.duration = SimDuration::from_secs(14);
    let out = run_whitefi(&s, None);
    assert_eq!(out.violations, 0);
    let tail_bytes: u64 = out
        .samples
        .iter()
        .rev()
        .take(20)
        .map(|smp| smp.bytes_delta)
        .sum();
    assert!(tail_bytes > 0, "network died after serial mic events");
}

#[test]
fn spatially_varied_clients_constrain_selection() {
    // One client is blind to the widest fragment; the AP must not sit on
    // it once reports arrive.
    let base = campus_sim_map();
    let mut s = quick(Scenario::new(16, base, 2));
    let mut blocked = base;
    for c in 2..=7 {
        blocked.set_occupied(UhfChannel::from_index(c));
    }
    s.client_maps[1] = blocked;
    s.duration = SimDuration::from_secs(6);
    let out = run_whitefi(&s, None);
    let final_ch = out.samples.last().unwrap().ap_channel;
    assert!(
        final_ch.low_index() > 7,
        "AP stayed on a fragment blocked at client 1: {final_ch}"
    );
    // Both clients still served.
    assert!(
        out.per_client_mbps.iter().all(|&m| m > 0.1),
        "{:?}",
        out.per_client_mbps
    );
}

#[test]
fn fully_blocked_spectrum_moves_no_data_and_breaks_nothing() {
    let mut s = quick(Scenario::new(17, SpectrumMap::all_occupied(), 1));
    s.client_maps[0] = SpectrumMap::all_occupied();
    s.duration = SimDuration::from_secs(2);
    // There is no admissible channel: run pinned to an arbitrary channel
    // whose span is occupied — a correct network transmits nothing… but a
    // *static* baseline ignores incumbents, so use the adaptive path with
    // an explicit initial channel instead.
    let out = run_whitefi(&s, Some(WfChannel::from_parts(10, Width::W20)));
    assert_eq!(
        out.aggregate_mbps, 0.0,
        "moved data over a fully occupied band"
    );
}
