//! Protocol-invariant integration tests: the disconnection machinery
//! under hostile conditions (occupied backup channels, lost
//! announcements, overlapping-AP backup channels).

use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi::{backup_candidates, choose_backup, choose_secondary_backup};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::{building5_map, scripted_mic};
use whitefi_spectrum::{IncumbentSet, UhfChannel, WfChannel, Width};

#[test]
fn backup_channel_hit_by_mic_falls_to_secondary() {
    // The advertised backup for the Building-5 map (main on the 20 MHz
    // fragment) is the first free 5 MHz channel outside it: index 12.
    let map = building5_map();
    let main = WfChannel::from_parts(7, Width::W20);
    let backup = choose_backup(map, Some(main)).unwrap();
    assert_eq!(backup.center().index(), 12);

    // Strike the main channel at t=3s AND the backup at t=3s: the
    // network must recover on some other channel with zero violations.
    let mut s = Scenario::new(21, map, 1);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(14);
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(3),
        SimTime::from_secs(60),
    ));
    inc.mics.push(scripted_mic(
        12,
        SimTime::from_secs(3),
        SimTime::from_secs(60),
    ));
    s.ap_extra_incumbents = Some(inc.clone());
    s.client_extra_incumbents[0] = Some(inc);
    let out = run_whitefi(&s, Some(main));
    assert_eq!(out.violations, 0);
    let final_ch = out.samples.last().unwrap().ap_channel;
    assert!(!final_ch.contains(UhfChannel::from_index(7)), "{final_ch}");
    assert!(!final_ch.contains(UhfChannel::from_index(12)), "{final_ch}");
    let tail: u64 = out
        .samples
        .iter()
        .rev()
        .take(20)
        .map(|x| x.bytes_delta)
        .sum();
    assert!(tail > 0, "no traffic after double strike");
}

#[test]
fn backup_overlapping_foreign_ap_still_works() {
    // §4.3: "chirps contend for the channel using CSMA, just like data
    // packets; as a result, it is unproblematic for a backup channel to
    // overlap with another AP's main channel." Put a busy background
    // pair right on the backup channel and run the recovery anyway.
    let map = building5_map();
    let main = WfChannel::from_parts(7, Width::W20);
    let backup = choose_backup(map, Some(main)).unwrap();
    let mut s = Scenario::new(22, map, 1);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(14);
    s.background.push(BackgroundPair {
        channel: backup,
        traffic: BackgroundTraffic::Cbr {
            interval: SimDuration::from_millis(15),
        },
    });
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(3),
        SimTime::from_secs(60),
    ));
    s.client_extra_incumbents[0] = Some(inc);
    let out = run_whitefi(&s, Some(main));
    assert_eq!(out.violations, 0);
    let tail: u64 = out
        .samples
        .iter()
        .rev()
        .take(20)
        .map(|x| x.bytes_delta)
        .sum();
    assert!(tail > 0, "recovery failed with contended backup channel");
}

#[test]
fn voluntary_switch_missed_announce_recovers_via_chirps() {
    // Force the network to switch voluntarily by loading its fragment;
    // even if a client misses the announcement (collisions), the
    // watchdog + chirp + backup-scan loop must reconverge.
    let map = building5_map();
    let mut s = Scenario::new(23, map, 2);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(16);
    for c in [5usize, 6, 7, 8, 9] {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(c, Width::W5),
            traffic: BackgroundTraffic::Scripted {
                interval: SimDuration::from_millis(3),
                windows: vec![(SimTime::from_secs(3), SimTime::from_secs(60))],
            },
        });
    }
    let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
    assert_eq!(out.violations, 0);
    // The network must have left the crushed fragment…
    let final_ch = out.samples.last().unwrap().ap_channel;
    assert!(
        final_ch.low_index() > 9,
        "still on crushed fragment: {final_ch}"
    );
    // …and both clients still see service at the end.
    let tail: u64 = out
        .samples
        .iter()
        .rev()
        .take(20)
        .map(|x| x.bytes_delta)
        .sum();
    assert!(tail > 0);
}

#[test]
fn backup_selection_helpers_are_consistent() {
    let map = building5_map();
    let main = WfChannel::from_parts(7, Width::W20);
    let cands = backup_candidates(map, Some(main));
    assert!(!cands.is_empty());
    let primary = choose_backup(map, Some(main)).unwrap();
    assert_eq!(cands[0], primary);
    let secondary = choose_secondary_backup(map, Some(main), primary).unwrap();
    assert_ne!(primary, secondary);
    assert!(cands.contains(&secondary));
    // Every candidate is admissible and disjoint from main.
    for c in cands {
        assert!(map.admits(c));
        assert!(!c.overlaps(main));
        assert_eq!(c.width(), Width::W5);
    }
}

#[test]
fn sustained_network_throughput_is_stable() {
    // Long steady-state run: goodput variance across 1 s windows must be
    // modest (no silent stalls, no runaway oscillation between channels).
    let mut s = Scenario::new(24, building5_map(), 2);
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(20);
    s.sample_interval = SimDuration::from_secs(1);
    let out = run_whitefi(&s, None);
    let rates: Vec<f64> = out
        .samples
        .iter()
        .map(|x| x.bytes_delta as f64 * 8.0 / 1e6)
        .collect();
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(mean > 2.0, "steady-state mean {mean} Mbps too low");
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min > 0.4 * mean, "stall detected: min {min} vs mean {mean}");
    // No channel flapping on clean spectrum.
    let switches = out
        .samples
        .windows(2)
        .filter(|w| w[0].ap_channel != w[1].ap_channel)
        .count();
    assert!(switches <= 1, "{switches} switches on clean spectrum");
}
