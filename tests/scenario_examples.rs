//! Scenario-loader fidelity suite (DESIGN.md §15).
//!
//! The six runnable examples were ported from hand-coded constructors
//! to thin loads of `scenarios/*.ron`. This suite keeps the retired
//! constructors alive verbatim and asserts the loader compiles each
//! file to the *same* engine input — field for field via the engine
//! types' `PartialEq` — and that running both produces byte-identical
//! outcomes. Any drift between the DSL compile layer and the original
//! examples fails here, not silently in a demo.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi::scenario_file::{self, CompiledCase, CompiledSingleAp, ScenarioDoc};
use whitefi::{
    baseline_discovery, j_sift_discovery, l_sift_discovery, select_channel, NodeReport,
    SyntheticOracle,
};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::{building5_map, campus_sim_map, scripted_mic};
use whitefi_spectrum::{
    AirtimeVector, GeoDatabase, IncumbentSet, Locale, LocaleClass, Location, MicSchedule,
    SpectrumMap, StationRecord, UhfChannel, WfChannel, Width, WirelessMic,
};

fn load(name: &str) -> ScenarioDoc {
    let path = format!("{}/scenarios/{name}.ron", env!("CARGO_MANIFEST_DIR"));
    scenario_file::load(&path).unwrap_or_else(|e| panic!("{e}"))
}

fn compile_single(doc: &ScenarioDoc) -> CompiledSingleAp {
    match doc.compile_sim() {
        Some(CompiledCase::SingleAp(case)) => *case,
        _ => panic!("expected a single-AP simulation document"),
    }
}

/// The retired `examples/quickstart.rs` constructor: Building 5 map,
/// two clients, one mic near client 0 at t = 6 s.
#[test]
fn quickstart_file_is_byte_identical_to_the_retired_constructor() {
    let mut legacy = Scenario::new(7, building5_map(), 2);
    legacy.warmup = SimDuration::from_secs(1);
    legacy.duration = SimDuration::from_secs(14);
    legacy.sample_interval = SimDuration::from_millis(500);
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(6),
        SimTime::from_secs(60),
    ));
    legacy.client_extra_incumbents[0] = Some(inc);

    let case = compile_single(&load("quickstart"));
    assert_eq!(case.scenario, legacy, "compiled scenario drifted");
    assert_eq!(case.initial(), None);
    assert_eq!(case.run(), run_whitefi(&legacy, None), "outcome drifted");
}

/// The retired `examples/mic_storm.rs` constructor: three mics chase
/// the network across the band, starting from the 20 MHz fragment.
#[test]
fn mic_storm_file_is_byte_identical_to_the_retired_constructor() {
    let mut inc = IncumbentSet::default();
    for (ch, on) in [(7usize, 4u64), (13, 8), (17, 12)] {
        inc.mics.push(scripted_mic(
            ch,
            SimTime::from_secs(on),
            SimTime::from_secs(30),
        ));
    }
    let mut legacy = Scenario::new(13, building5_map(), 2);
    legacy.warmup = SimDuration::from_secs(1);
    legacy.duration = SimDuration::from_secs(39);
    legacy.sample_interval = SimDuration::from_millis(500);
    legacy.ap_extra_incumbents = Some(inc.clone());
    for c in legacy.client_extra_incumbents.iter_mut() {
        *c = Some(inc.clone());
    }
    let initial = WfChannel::from_parts(7, Width::W20);

    let case = compile_single(&load("mic_storm"));
    assert_eq!(case.scenario, legacy, "compiled scenario drifted");
    assert_eq!(case.initial(), Some(initial));
    assert_eq!(
        case.run(),
        run_whitefi(&legacy, Some(initial)),
        "outcome drifted"
    );
}

/// The retired `examples/campus_day.rs` constructor, including its
/// sampled mic storm: one ChaCha8 stream draws a coin and a schedule
/// per free channel, then the same incumbents land on the AP and every
/// client. The `MicStorm(seed: Scenario)` compile must replay those
/// draws exactly.
#[test]
fn campus_day_file_is_byte_identical_to_the_retired_constructor() {
    let map = campus_sim_map();
    let horizon_s = 120u64;
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let mut incumbents = IncumbentSet::default();
    for ch in map.free_channels() {
        if rng.gen_bool(0.5) {
            let schedule = MicSchedule::sample(&mut rng, horizon_s * 1_000_000_000, 40.0, 10.0);
            incumbents.mics.push(WirelessMic::new(ch, schedule));
        }
    }
    let mut legacy = Scenario::new(2026, map, 3);
    legacy.warmup = SimDuration::from_secs(2);
    legacy.duration = SimDuration::from_secs(horizon_s - 2);
    legacy.sample_interval = SimDuration::from_secs(1);
    legacy.ap_extra_incumbents = Some(incumbents.clone());
    for c in legacy.client_extra_incumbents.iter_mut() {
        *c = Some(incumbents.clone());
    }
    for ch in [10usize, 16] {
        legacy.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(20),
            },
        });
    }

    let case = compile_single(&load("campus_day"));
    assert_eq!(case.scenario, legacy, "compiled scenario drifted");
    assert_eq!(
        case.contrast_fixed,
        Some(WfChannel::from_parts(4, Width::W20))
    );
    assert_eq!(case.run(), run_whitefi(&legacy, None), "outcome drifted");
}

/// The retired `examples/rural_broadband.rs` loop: one shared RNG
/// samples each locale and that phase's 40 AP placements in document
/// order, with oracle seeds `seed + trial`. The phase expansion must
/// match draw for draw, and the discovery outcomes must agree.
#[test]
fn rural_broadband_phases_match_the_retired_loop() {
    let seed = 1848u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let doc = load("rural_broadband");
    let ScenarioDoc::LocaleContrast(contrast) = &doc else {
        panic!("rural_broadband.ron is not a LocaleContrast document");
    };
    let phases = scenario_file::locale_contrast_phases(contrast);
    assert_eq!(phases.len(), 2);

    for (phase, class) in phases.iter().zip([LocaleClass::Rural, LocaleClass::Urban]) {
        let locale = Locale::sample(class, &mut rng);
        assert_eq!(phase.class, class);
        assert_eq!(phase.locale, locale, "{}: locale drifted", class.label());

        let mut legacy = Scenario::new(seed ^ class.label().len() as u64, locale.map, 4);
        legacy.warmup = SimDuration::from_secs(1);
        legacy.duration = SimDuration::from_secs(5);
        assert_eq!(
            phase.scenario,
            legacy,
            "{}: scenario drifted",
            class.label()
        );

        let placements = locale.map.available_channels();
        assert!(!placements.is_empty(), "sampled locale admits no channel");
        for (t, trial) in phase.trials.iter().enumerate() {
            let ap = placements[rng.gen_range(0..placements.len())];
            assert_eq!(
                trial.ap,
                ap,
                "{}: trial {t} placement drifted",
                class.label()
            );
            assert_eq!(trial.oracle_seed, seed + t as u64);
        }
        assert_eq!(phase.trials.len(), 40);
    }

    // One full discovery trial each way: same oracle seed, same times.
    let trial = &phases[0].trials[0];
    let mk = || SyntheticOracle::new(trial.ap, ChaCha8Rng::seed_from_u64(trial.oracle_seed));
    let a = baseline_discovery(&mut mk(), phases[0].locale.map).expect("admissible");
    let b = baseline_discovery(&mut mk(), phases[0].locale.map).expect("admissible");
    assert_eq!(a, b, "oracle seed is not reproducible");
}

/// The retired `examples/discovery_race.rs` sweep: per width one RNG
/// seeded by the width draws the placement and then three oracle seeds
/// per trial, interleaved with the three algorithms. Mean dwell counts
/// must match bit for bit across all 30 widths.
#[test]
fn discovery_race_rows_match_the_retired_sweep() {
    let doc = load("discovery_race");
    let ScenarioDoc::DiscoverySweep(sweep) = &doc else {
        panic!("discovery_race.ron is not a DiscoverySweep document");
    };
    let rows = scenario_file::run_discovery_sweep(sweep);
    assert_eq!(rows.len(), 30);

    let trials = 200u64;
    for row in &rows {
        let width = row.width;
        let mut map = SpectrumMap::all_occupied();
        for i in 0..width {
            map.set_free(UhfChannel::from_index(i));
        }
        let placements = map.available_channels();
        let mut rng = ChaCha8Rng::seed_from_u64(width as u64);
        let mut sums = [0.0f64; 3];
        for _ in 0..trials {
            let ap = placements[rng.gen_range(0..placements.len())];
            let mk = |s| SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(s));
            sums[0] += f64::from(
                baseline_discovery(&mut mk(rng.gen()), map)
                    .expect("map has free channels")
                    .scans,
            );
            sums[1] += f64::from(
                l_sift_discovery(&mut mk(rng.gen()), map)
                    .expect("map has free channels")
                    .scans,
            );
            sums[2] += f64::from(
                j_sift_discovery(&mut mk(rng.gen()), map)
                    .expect("map has free channels")
                    .scans,
            );
        }
        #[allow(clippy::cast_precision_loss)] // trial counts are small
        let [b, l, j] = sums.map(|s| s / trials as f64);
        assert_eq!(
            (row.baseline, row.l_sift, row.j_sift),
            (b, l, j),
            "width {width}: mean dwells drifted"
        );
    }
}

/// The retired `examples/roadtrip.rs` drive: two markets registered in
/// station order, the route queried every 10 km. Maps and channel
/// picks must agree at every step.
#[test]
fn roadtrip_steps_match_the_retired_drive() {
    let doc = load("roadtrip");
    let ScenarioDoc::Roadtrip(trip) = &doc else {
        panic!("roadtrip.ron is not a Roadtrip document");
    };
    let steps = scenario_file::run_roadtrip(trip);
    assert_eq!(steps.len(), 25);

    let mut db = GeoDatabase::new();
    for (ch, erp) in [(2usize, 1000.0), (6, 800.0), (11, 600.0), (15, 400.0)] {
        db.register(StationRecord {
            channel: UhfChannel::from_index(ch),
            site: Location::new(0.0, 0.0),
            erp_kw: erp,
        });
    }
    for (ch, erp) in [(3usize, 1000.0), (11, 900.0), (22, 700.0), (27, 500.0)] {
        db.register(StationRecord {
            channel: UhfChannel::from_index(ch),
            site: Location::new(240.0, 0.0),
            erp_kw: erp,
        });
    }
    for (i, step) in steps.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)] // 25 steps
        let x = i as f64 * 10.0;
        assert_eq!(step.x_km, x);
        let map = db.query(Location::new(x, 0.0));
        assert_eq!(step.map, map, "step {i}: database map drifted");
        let report = NodeReport {
            map,
            airtime: AirtimeVector::idle(),
        };
        let pick = select_channel(&report, &[]).map(|(c, _)| c);
        assert_eq!(step.pick, pick, "step {i}: channel pick drifted");
    }
}
