//! Integration test of the *full* discovery signal path: a beaconing AP
//! in the MAC simulator, a scanner capturing real amplitude traces from
//! the medium, SIFT classifying them, and the J-SIFT/L-SIFT drivers
//! running on top — no synthetic oracle shortcuts.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi::{
    baseline_discovery, j_sift_discovery, l_sift_discovery, DiscoveryOutcome, ScanOracle,
};
use whitefi_mac::traffic::Sink;
use whitefi_mac::{NodeConfig, Simulator};
use whitefi_phy::{DetectionKind, Scanner, Sift, SimDuration, SimTime, StreamingSift};
use whitefi_spectrum::{SpectrumMap, UhfChannel, WfChannel, Width};

/// A scan oracle backed by the live simulator: each dwell advances the
/// simulation by one beacon period and runs SIFT over the scanner's
/// captured amplitude trace.
struct MediumOracle {
    sim: Simulator,
    scanner: Scanner,
    sift: Sift,
    dwell: SimDuration,
    rng: ChaCha8Rng,
    ap_channel: WfChannel,
}

impl MediumOracle {
    fn new(ap_channel: WfChannel, seed: u64) -> Self {
        let mut sim = Simulator::new(seed);
        // A beaconing AP: ApBehavior beacons every 100 ms and the engine
        // appends the CTS-to-self that gives SIFT its signature.
        let ap_cfg = whitefi::ApConfig::default();
        sim.add_node(
            NodeConfig::on_channel(ap_channel).ap(),
            Box::new(whitefi::ApBehavior::new(ap_cfg)),
        );
        // A passive peer, so the channel also carries nothing else.
        sim.add_node(NodeConfig::on_channel(ap_channel), Box::new(Sink));
        Self {
            sim,
            scanner: Scanner::new(),
            sift: Sift::default(),
            dwell: SimDuration::from_millis(120),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xd00d),
            ap_channel,
        }
    }

    /// Advances the simulation by one dwell and returns the window.
    fn advance(&mut self) -> (SimTime, SimTime) {
        let from = self.sim.now();
        let to = from + self.dwell;
        self.sim.run_until(to);
        (from, to)
    }
}

impl ScanOracle for MediumOracle {
    fn sift_scan(&mut self, ch: UhfChannel) -> Option<Width> {
        let (from, to) = self.advance();
        let on_air = self.sim.medium().visible_bursts(from, to);
        // Block-at-a-time, like the real USRP → PC path: the dwell's
        // trace is never materialized whole.
        let mut stream = self
            .scanner
            .capture_stream(ch, &on_air, from, self.dwell, &mut self.rng);
        let mut sift = StreamingSift::new(self.sift.config);
        let mut detections = Vec::new();
        while let Some(block) = stream.next_block() {
            detections.extend(sift.push_block(block));
        }
        detections.extend(sift.finish());
        detections
            .into_iter()
            .find(|d| d.kind == DetectionKind::BeaconCts || d.kind == DetectionKind::DataAck)
            .map(|d| d.width)
    }

    fn decode_scan(&mut self, ch: WfChannel) -> bool {
        let (from, to) = self.advance();
        // Decoding succeeds iff a beacon went out on exactly this channel
        // during the dwell (the transceiver is tuned to (F, W)).
        self.sim
            .medium()
            .visible_bursts(from, to)
            .iter()
            .any(|vb| vb.channel == ch && matches!(vb.burst.kind, whitefi_phy::BurstKind::Beacon))
            && ch == self.ap_channel
    }

    fn dwell(&self) -> SimDuration {
        self.dwell
    }
}

fn check(ap: WfChannel, map: SpectrumMap, seed: u64) -> (DiscoveryOutcome, DiscoveryOutcome) {
    let mut oracle = MediumOracle::new(ap, seed);
    let j = j_sift_discovery(&mut oracle, map).expect("j-sift failed on live signal");
    assert_eq!(j.found, ap, "j-sift found the wrong channel");
    let mut oracle = MediumOracle::new(ap, seed + 1);
    let l = l_sift_discovery(&mut oracle, map).expect("l-sift failed on live signal");
    assert_eq!(l.found, ap, "l-sift found the wrong channel");
    (l, j)
}

#[test]
fn live_signal_discovery_every_width() {
    let map = SpectrumMap::all_free();
    for (i, ap) in [
        WfChannel::from_parts(4, Width::W5),
        WfChannel::from_parts(14, Width::W10),
        WfChannel::from_parts(24, Width::W20),
    ]
    .into_iter()
    .enumerate()
    {
        let (l, j) = check(ap, map, 42 + i as u64);
        assert!(l.scans >= 1 && j.scans >= 1);
    }
}

#[test]
fn live_signal_discovery_fragmented_map() {
    let map = SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]);
    let ap = WfChannel::from_parts(7, Width::W20);
    let (l, j) = check(ap, map, 99);
    // On the 10-free-channel building map both SIFT algorithms need at
    // most ~the number of free channels plus the endgame.
    assert!(l.scans <= 12, "l-sift {} scans", l.scans);
    assert!(j.scans <= 12, "j-sift {} scans", j.scans);
}

#[test]
fn live_signal_baseline_agrees() {
    let map = SpectrumMap::from_free([5, 6, 7, 8, 9]);
    let ap = WfChannel::from_parts(6, Width::W10);
    let mut oracle = MediumOracle::new(ap, 7);
    let b = baseline_discovery(&mut oracle, map).expect("baseline failed");
    assert_eq!(b.found, ap);
}

#[test]
fn scanner_sees_beacon_cts_signature_on_spanned_channel() {
    // Direct check of the §4.2.1 mechanism: dwell on a non-centre spanned
    // channel, detect the beacon+CTS pair, infer the width.
    let ap = WfChannel::from_parts(15, Width::W20);
    let mut oracle = MediumOracle::new(ap, 5);
    let width = oracle.sift_scan(UhfChannel::from_index(13));
    assert_eq!(width, Some(Width::W20));
    // A channel outside the span sees nothing.
    let mut oracle = MediumOracle::new(ap, 6);
    assert_eq!(oracle.sift_scan(UhfChannel::from_index(20)), None);
}
